"""Index nested loops join — the small-delta regime's algorithm.

Probes an index on the inner relation once per outer row.  Cost (per the
paper's units): one SEARCH per probe, plus one FETCH per match when the
index is non-clustered; clustered matches ride the landing page for free.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

from ..storage.index import LocalIndex
from ..storage.schema import Row


def index_nested_loops_join(
    outer: Iterable[Row],
    outer_key: Callable[[Row], object],
    inner_index: LocalIndex,
    on_search: Optional[Callable[[], None]] = None,
    on_fetch: Optional[Callable[[int], None]] = None,
) -> List[Tuple[Row, Row]]:
    """Join ``outer`` rows against the indexed inner fragment.

    ``on_search``/``on_fetch`` are accounting hooks: called once per probe
    and once per *charged* batch of fetches (non-clustered only), letting
    callers bill any ledger without this module knowing about clusters.
    """
    results: List[Tuple[Row, Row]] = []
    for outer_row in outer:
        key = outer_key(outer_row)
        if on_search is not None:
            on_search()
        rowids = inner_index.search(key)
        if not rowids:
            continue
        if not inner_index.clustered and on_fetch is not None:
            on_fetch(len(rowids))
        for rowid in rowids:
            results.append((outer_row, inner_index.table.fetch(rowid)))
    return results


def estimate_cost_ios(
    num_outer: int,
    fanout: float,
    clustered: bool,
    search_ios: float = 1.0,
    fetch_ios: float = 1.0,
) -> float:
    """Predicted I/Os: probes plus per-match fetches when non-clustered."""
    if num_outer < 0:
        raise ValueError("num_outer must be >= 0")
    cost = num_outer * search_ios
    if not clustered:
        cost += num_outer * fanout * fetch_ios
    return cost
