"""Join-algorithm choice: the regime boundary of the paper's §3.1.2.

"If |A| is large enough ... the sort merge algorithm is preferable to
index nested loops."  The chooser compares the closed-form estimates of
both algorithms for a concrete (delta size, fragment, index) situation and
names the winner — the same comparison the maintenance planner applies per
hop, exposed standalone for analysis and the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..storage.pages import PageLayout
from . import nested_loops, sort_merge


@dataclass(frozen=True)
class JoinSituation:
    """Everything the regime choice depends on, for one node."""

    outer_rows: int          # delta tuples this node must join
    fanout: float            # matches per delta tuple
    fragment_pages: int      # pages of the local partner fragment
    index_clustered: bool    # is the probed index clustered on the key?
    layout: PageLayout


@dataclass(frozen=True)
class JoinChoice:
    algorithm: str           # "index_nested_loops" | "sort_merge"
    inl_ios: float
    sort_merge_ios: float

    @property
    def winner_ios(self) -> float:
        return min(self.inl_ios, self.sort_merge_ios)


def choose(situation: JoinSituation) -> JoinChoice:
    """Pick the cheaper algorithm for the situation."""
    inl = nested_loops.estimate_cost_ios(
        situation.outer_rows, situation.fanout, situation.index_clustered
    )
    sm = sort_merge.estimate_cost_ios(
        situation.fragment_pages, situation.layout, situation.index_clustered
    )
    algorithm = "sort_merge" if sm < inl else "index_nested_loops"
    return JoinChoice(algorithm=algorithm, inl_ios=inl, sort_merge_ios=sm)


def crossover_outer_rows(
    fanout: float,
    fragment_pages: int,
    index_clustered: bool,
    layout: PageLayout,
) -> int:
    """Smallest delta size at which sort-merge wins, by bisection —
    the per-node analogue of :func:`repro.model.sort_merge_crossover`."""
    low, high = 1, 1
    def sm_wins(outer: int) -> bool:
        return choose(
            JoinSituation(outer, fanout, fragment_pages, index_clustered, layout)
        ).algorithm == "sort_merge"

    while not sm_wins(high):
        high *= 2
        if high > 10**9:
            raise RuntimeError("no crossover below 1e9 outer rows")
    while low < high:
        mid = (low + high) // 2
        if sm_wins(mid):
            high = mid
        else:
            low = mid + 1
    return low
