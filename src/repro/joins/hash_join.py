"""In-memory hash join — used for from-scratch view evaluation.

The paper notes its sort-merge conclusions "would be the same for hash
joins": both are scan-dominated, so the cost estimate mirrors sort-merge's
scan/sort shape with a build-side pass.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple

from ..storage.pages import PageLayout
from ..storage.schema import Row


def hash_join(
    build: Iterable[Row],
    build_key: Callable[[Row], object],
    probe: Iterable[Row],
    probe_key: Callable[[Row], object],
) -> List[Tuple[Row, Row]]:
    """Classic build/probe hash join; returns (probe_row, build_row) pairs
    so the caller's row order matches the outer-driven conventions of the
    other algorithms."""
    table: Dict[object, List[Row]] = {}
    for row in build:
        table.setdefault(build_key(row), []).append(row)
    results: List[Tuple[Row, Row]] = []
    for row in probe:
        for match in table.get(probe_key(row), ()):
            results.append((row, match))
    return results


def estimate_cost_ios(
    fragment_pages: int,
    layout: PageLayout,
    fits_memory: bool | None = None,
) -> float:
    """Predicted I/Os: one scan if the build side fits in memory, a
    grace-style three-pass estimate otherwise."""
    if fits_memory is None:
        fits_memory = fragment_pages <= layout.memory_pages
    if fits_memory:
        return layout.scan_cost_pages(fragment_pages)
    return 3.0 * layout.scan_cost_pages(fragment_pages)
