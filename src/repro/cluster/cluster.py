"""The parallel RDBMS: L shared-nothing data servers behind one facade.

The :class:`Cluster` owns the nodes, the accounted network, the catalog, and
the cost ledger.  Its update path follows the paper's transaction sketch:

    begin transaction
        update base relation;
        update auxiliary relations / global indexes of that relation;
        update every join view defined over it;
    end transaction

Base-relation writes are tagged ``BASE``, auxiliary-structure co-updates and
join probing are tagged ``MAINTAIN`` (the paper's TW), and view writes are
tagged ``VIEW``, so measurements can reproduce exactly the differential cost
the paper models.
"""

from __future__ import annotations

import os

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.delta import Delta, PlacedRow
from ..costs import CostLedger, CostParameters, CostSnapshot, Op, PAPER_COSTS, Tag
from ..obs.collect import DISABLED
from ..storage import GlobalRowId, PageLayout, Row, Schema
from ..storage.pages import DEFAULT_LAYOUT
from .catalog import (
    AuxiliaryRelationInfo,
    Catalog,
    GlobalIndexInfo,
    RelationInfo,
    ViewInfo,
)
from .membership import ClusterMembership, MigrationReport, Replicator
from .network import Network
from .node import Node
from .partitioning import (
    BoundRoundRobin,
    ConsistentHashPartitioning,
    HashPartitioning,
    PartitioningSpec,
    RoundRobinPartitioning,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.recovery import FaultController
    from ..faults.undo import UndoLog
    from .parallel import ParallelEngine


class Cluster:
    """A parallel RDBMS with ``num_nodes`` data-server nodes."""

    def __init__(
        self,
        num_nodes: int,
        costs: CostParameters = PAPER_COSTS,
        layout: PageLayout = DEFAULT_LAYOUT,
        batch_execution: bool = True,
        workers: Optional[int] = None,
        probe_cache_threshold: int = 3,
        sanitize: Optional[bool] = None,
        shared_maintenance: bool = True,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 (or None for serial)")
        self.num_nodes = num_nodes
        self.layout = layout
        #: Enables the batched delta-execution engine (bulk routing, probe
        #: memoization, coalesced sends).  Charge-equivalent to the
        #: tuple-at-a-time reference engine on the fault-free path; pass
        #: ``False`` to force the reference engine everywhere (the
        #: equivalence tests compare the two).
        self.batch_execution = batch_execution
        #: ``None`` (default) keeps execution serial.  An integer forks a
        #: persistent pool of that many **read servers** (see
        #: :mod:`repro.cluster.parallel`): mutations stay coordinator-side
        #: on the bulk paths and reach workers lazily as columnar refresh
        #: blocks, while read hops fan out slot-sticky across the pool —
        #: with bit-identical ledgers, stats, and fragment contents.
        self.workers = workers
        #: Probe frequency at which a worker promotes a join key to its
        #: resident heavy-hitter cache; ``0`` disables the cache.
        self.probe_cache_threshold = probe_cache_threshold
        #: Whether a statement over a relation with two or more registered
        #: views may build one shared delta-propagation DAG instead of the
        #: per-view loop (see :mod:`repro.core.shared`).  Single-view
        #: statements never take the shared path either way, so their
        #: charges are unaffected by this flag.
        self.shared_maintenance = shared_maintenance
        #: Statement-scoped cross-group probe memo; non-``None`` only while
        #: a shared multi-view statement is in flight.
        self._shared_ctx = None
        #: One select-independent compiled join per (version, clause) —
        #: views differing only in projection share the entry (see
        #: ``MaintenancePlanner._shared_join``).
        self._compiled_join_cache: Dict[Tuple, object] = {}
        self.ledger = CostLedger(costs)
        self.network = Network(num_nodes, self.ledger)
        self.nodes: List[Node] = [
            Node(node_id, self.ledger, layout) for node_id in range(num_nodes)
        ]
        self.catalog = Catalog()
        #: Token registry + topology history (see :mod:`.membership`).
        #: Fixed-topology runs never touch it beyond construction.
        self.membership = ClusterMembership(num_nodes)
        #: High-water mark of ``num_nodes`` over the cluster's lifetime.
        #: Ledger cells are historical: a retired node id keeps its charges,
        #: so range checks bound against the peak, not the present.
        self.peak_num_nodes = num_nodes
        #: K-copy replication hooks; installed by
        #: :meth:`enable_replication`.  ``None`` (the default) costs one
        #: predicate per write and charges nothing — seed behavior exact.
        self.replicator: Optional["Replicator"] = None
        #: Fault injection + recovery; installed by
        #: :func:`repro.faults.attach_faults`.  ``None`` on the fault-free
        #: path, where every charge is bit-identical to the seed engine.
        self.faults: Optional["FaultController"] = None
        #: Stack of active undo scopes (innermost last).  Empty on the
        #: fault-free path: :meth:`_record_undo` is then a no-op.
        self._undo_logs: List["UndoLog"] = []
        #: Lazily constructed worker-pool handle (see ``workers`` above).
        self._parallel_engine: Optional["ParallelEngine"] = None
        #: Observability facade (tracer + metrics registry).  The shared
        #: :data:`repro.obs.DISABLED` singleton until
        #: :func:`repro.obs.attach_observability` arms a live one; the
        #: no-op tracer allocates nothing, so the fault-free hot path is
        #: unchanged (the equivalence suites pin this bit-for-bit).
        self.obs = DISABLED
        #: Runtime sanitizer mode (``sanitize=True`` or ``REPRO_SANITIZE=1``
        #: in the environment): swaps in a send-accounting network and runs
        #: the :mod:`repro.analysis.sanitizer` invariant checks after every
        #: statement.  Never charges the ledger — a sanitized run is
        #: bit-identical to an unsanitized one — but the per-statement
        #: checks cost real time; keep it off on the measurement path.
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
        self.sanitize = bool(sanitize)
        self._sanitizer = None
        if self.sanitize:
            from ..analysis.sanitizer import install

            self._sanitizer = install(self)
        #: Shared multi-view counters (partition passes, probe dedup); see
        #: :class:`repro.core.shared.MultiViewStats`.  Import is deferred to
        #: construction time, matching the other core-package hooks above.
        from ..core.shared import MultiViewStats

        self.multi_view_stats = MultiViewStats()

    # ==================================================== parallel lifecycle

    def _parallel_gate(self) -> bool:
        """Whether parallel execution is admissible *right now*.

        Same conditions as :meth:`_bulk_ok` (the superstep engine is built
        on the bulk paths) plus a configured worker count.  Faults and undo
        scopes route to the serial reference engine, exactly like PR 2.
        Replication also drains: its write hooks mutate coordinator-side
        replica bags and must observe every primary write in-process.
        """
        return (
            self.workers is not None
            and self.batch_execution
            and self.faults is None
            and self.replicator is None
            and not self._undo_logs
        )

    def _parallel_start(self) -> Optional["ParallelEngine"]:
        """The engine, forked and running — or ``None`` (serial statement).

        Called at statement entry.  When parallel execution is configured
        but currently inadmissible the pool is drained first, so no worker
        ever holds a shard the serial path is about to mutate behind its
        back.  Draining is free: the coordinator's node image is current at
        every superstep boundary, and a later start re-forks from it.
        """
        if self.workers is None:
            return None
        if not self._parallel_gate():
            self._drain_parallel()
            return None
        engine = self._parallel_engine
        if engine is None:
            from .parallel import ParallelEngine, fork_available

            if not fork_available():  # pragma: no cover - POSIX-only repo
                return None
            engine = ParallelEngine(
                self, self.workers, self.probe_cache_threshold
            )
            self._parallel_engine = engine
        if engine.broken:
            return None
        engine.start()
        return engine if engine.running else None

    def _parallel_running(self) -> Optional["ParallelEngine"]:
        """The engine, only if the pool is already alive and admissible.

        Used by mid-statement hooks (maintenance hops, view-delta writes):
        they never *start* a pool, so a statement that began serially stays
        serial throughout.
        """
        engine = self._parallel_engine
        if engine is not None and engine.running and self._parallel_gate():
            return engine
        return None

    def _drain_parallel(self) -> None:
        """Stop the worker pool (no-op when not running).  Loses nothing —
        worker shards are replicas of the coordinator's current image."""
        engine = self._parallel_engine
        if engine is not None and engine.running:
            engine.stop()

    def close(self) -> None:
        """Release external resources (the worker pool).  Idempotent; the
        cluster remains fully usable afterwards (serially, until the next
        eligible statement re-forks the pool)."""
        self._drain_parallel()

    def _views_parallel_safe(self, relation: str) -> bool:
        """Whether every view over ``relation`` maintains through the
        superstep engine.  Plain join views (optionally deferred) do;
        subclasses with bespoke apply paths (aggregate views mutate view
        fragments directly) drain and run serially instead."""
        from ..core.deferred import DeferredMaintainer
        from ..core.maintenance import JoinViewMaintainer

        for view in self.catalog.views_on(relation):
            maintainer = view.maintainer
            if isinstance(maintainer, DeferredMaintainer):
                maintainer = maintainer.inner
            if type(maintainer) is not JoinViewMaintainer:
                return False
        return True

    # ================================================================= DDL

    def create_relation(
        self,
        schema: Schema,
        partitioned_on: str,
        indexes: Sequence[Tuple[str, bool]] = (),
        spec: Optional[PartitioningSpec] = None,
    ) -> RelationInfo:
        """Create a hash-partitioned base relation on every node.

        ``indexes`` lists (column, clustered) local indexes to build on each
        fragment; a fragment may be clustered on at most one column.
        ``spec`` overrides the placement scheme: pass
        :class:`ConsistentHashPartitioning` (on the same column) to place
        rows on the membership token ring, making later ``add_node`` /
        ``remove_node`` calls relocate only the minimal key share.
        """
        self._drain_parallel()  # DDL reshapes shards: rebuild workers after
        if spec is None:
            spec = HashPartitioning(partitioned_on)
        elif getattr(spec, "column", partitioned_on) != partitioned_on:
            raise ValueError(
                f"spec partitions on {spec.column!r} but partitioned_on "
                f"says {partitioned_on!r}"
            )
        partitioner = self._bind_spec(spec, schema)
        info = RelationInfo(schema=schema, spec=spec, partitioner=partitioner)
        self.catalog.add_relation(info)
        for node in self.nodes:
            node.create_fragment(schema)
        for column, clustered in indexes:
            self.create_index(schema.name, column, clustered=clustered)
        return info

    def create_index(self, relation: str, column: str, clustered: bool = False) -> None:
        """Build a local index on ``relation.column`` at every node."""
        self._drain_parallel()
        info = self.catalog.relation(relation)
        if column not in info.schema:
            raise KeyError(f"{relation!r} has no column {column!r}")
        if column in info.indexes:
            return
        for node in self.nodes:
            node.create_local_index(relation, column, clustered)
        info.indexes[column] = clustered
        # New indexes change the available access paths: invalidate every
        # version-keyed plan cache.
        self.catalog.bump_version()

    def has_index(self, relation: str, column: str) -> bool:
        return column in self.catalog.relation(relation).indexes

    def create_auxiliary_relation(
        self,
        base: str,
        on_column: str,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[Callable[[Row], bool]] = None,
        name: Optional[str] = None,
    ) -> AuxiliaryRelationInfo:
        """Create AR_base: a selection/projection of ``base`` repartitioned
        on ``on_column`` with a clustered index on it (paper §2.1.2).

        ``columns`` trims the copy to the listed columns (``on_column`` is
        always kept); ``predicate`` keeps only matching base rows.  Existing
        base rows are copied in without cost charging (one-time build, like
        the paper's offline creation of orders_1/lineitem_1).
        """
        self._drain_parallel()
        base_info = self.catalog.relation(base)
        if on_column not in base_info.schema:
            raise KeyError(f"{base!r} has no column {on_column!r}")
        if base_info.is_partitioned_on(on_column):
            raise ValueError(
                f"{base!r} is already partitioned on {on_column!r}; "
                "the paper keeps no auxiliary relation in that case"
            )
        ar_name = name or f"AR_{base}_{on_column}"
        kept: Tuple[str, ...]
        if columns is None:
            kept = base_info.schema.column_names
        else:
            kept = tuple(columns)
            if on_column not in kept:
                kept = (on_column,) + kept
        ar_schema = base_info.schema.project(kept, name=ar_name)
        project = base_info.schema.projector(kept)
        spec = HashPartitioning(on_column)
        partitioner = spec.bind(ar_schema, self.num_nodes)
        info = AuxiliaryRelationInfo(
            name=ar_name,
            base=base,
            column=on_column,
            schema=ar_schema,
            partitioner=partitioner,
            columns=None if columns is None else kept,
            predicate=predicate,
            project=project,
        )
        self.catalog.add_auxiliary(info)
        for node in self.nodes:
            node.create_fragment(ar_schema)
            node.create_local_index(ar_name, on_column, clustered=True)
        # Backfill from the existing base contents (uncharged: offline build).
        for node in self.nodes:
            if node.has_fragment(base):
                for row in node.scan(base):
                    image = info.image_of(row)
                    if image is None:
                        continue
                    dest = partitioner.node_of_row(image)
                    self.nodes[dest].fragment(ar_name).insert(image)  # repro: no-undo=DDL backfill; create_auxiliary_relation is not a transactional statement
        self._sync_replicas()
        return info

    def create_global_index(
        self,
        base: str,
        on_column: str,
        distributed_clustered: bool = False,
        name: Optional[str] = None,
    ) -> GlobalIndexInfo:
        """Create GI_base on ``base.on_column`` (paper §2.1.3).

        ``distributed_clustered`` asserts that every node's fragment of
        ``base`` is physically clustered on ``on_column``; it is validated
        against the declared local indexes.
        """
        self._drain_parallel()
        base_info = self.catalog.relation(base)
        if on_column not in base_info.schema:
            raise KeyError(f"{base!r} has no column {on_column!r}")
        if base_info.is_partitioned_on(on_column):
            raise ValueError(
                f"{base!r} is already partitioned on {on_column!r}; "
                "the paper keeps no global index in that case"
            )
        if distributed_clustered and base_info.indexes.get(on_column) is not True:
            raise ValueError(
                f"a distributed clustered GI on {base}.{on_column} requires "
                "the base fragments to be clustered on that column "
                "(create the relation with a clustered local index first)"
            )
        gi_name = name or f"GI_{base}_{on_column}"
        info = GlobalIndexInfo(
            name=gi_name,
            base=base,
            column=on_column,
            distributed_clustered=distributed_clustered,
            key_position=base_info.schema.index_of(on_column),
            num_nodes=self.num_nodes,
        )
        self.catalog.add_global_index(info)
        for node in self.nodes:
            node.create_gi_partition(gi_name, base, on_column)
        # Backfill entries for existing base rows (uncharged: offline build).
        for node in self.nodes:
            if node.has_fragment(base):
                for rowid, row in node.fragment(base).table.scan():
                    key = row[info.key_position]
                    dest = info.home_node(key)
                    self.nodes[dest].gi_partition(gi_name).insert(  # repro: no-undo=DDL backfill; create_global_index is not a transactional statement
                        key, GlobalRowId(node.node_id, rowid)
                    )
        return info

    def _bind_spec(self, spec: PartitioningSpec, schema: Schema):
        """Bind a partitioning spec against the current topology; consistent
        hashing binds to the membership's stable tokens (and any rebalancer
        weight overrides), everything else to the dense node count."""
        if isinstance(spec, ConsistentHashPartitioning):
            return spec.bind(
                schema,
                self.num_nodes,
                tokens=self.membership.tokens,
                weights=dict(self.membership.weights),
            )
        return spec.bind(schema, self.num_nodes)

    def create_view_storage(
        self, schema: Schema, spec: PartitioningSpec
    ) -> BoundRoundRobin:
        """Create the view's fragments on every node; returns the bound
        partitioner.  Hash-partitioned views (modulo or ring) get an index
        on the partitioning column (paper assumption 3)."""
        self._drain_parallel()
        partitioner = self._bind_spec(spec, schema)
        for node in self.nodes:
            node.create_fragment(schema)
        if isinstance(spec, (HashPartitioning, ConsistentHashPartitioning)):
            for node in self.nodes:
                node.create_local_index(schema.name, spec.column, clustered=False)
        return partitioner

    def create_join_view(self, definition, method="auxiliary", **kwargs) -> ViewInfo:
        """Define and register a maintained join view.

        ``definition`` is a :class:`repro.core.JoinViewDefinition`;
        ``method`` one of ``"naive"``, ``"auxiliary"``, ``"global_index"``
        (or a :class:`repro.core.MaintenanceMethod`).  Creates any missing
        auxiliary relations / global indexes the method requires.  Imported
        lazily to keep the cluster layer free of a dependency cycle on the
        maintenance layer.
        """
        from ..core import define_join_view

        info = define_join_view(self, definition, method=method, **kwargs)
        self._sync_replicas()
        return info

    def create_view_from_sql(self, sql: str, method="auxiliary", **kwargs) -> ViewInfo:
        """CREATE VIEW in the paper's SQL dialect (see :mod:`repro.sql`).

        >>> cluster.create_view_from_sql(
        ...     "create view JV as select * from A, B "
        ...     "where A.c = B.d partitioned on A.e;",
        ...     method="auxiliary",
        ... )  # doctest: +SKIP
        """
        from ..sql import parse_join_view

        schemas = {name: info.schema for name, info in self.catalog.relations.items()}
        definition = parse_join_view(sql, schemas)
        return self.create_join_view(definition, method=method, **kwargs)

    # ================================================================ drops

    def drop_view(self, name: str) -> None:
        """Drop a materialized view: its fragments, registration, and the
        serves-views links of the structures it used.  The structures
        themselves stay (other views may share them); drop them separately
        when unreferenced."""
        self._drain_parallel()
        self.catalog.remove_view(name)
        for node in self.nodes:
            if node.has_fragment(name):
                node.drop_fragment(name)
        self._sync_replicas()

    def drop_auxiliary_relation(self, name: str, force: bool = False) -> None:
        """Drop an auxiliary relation.  Refuses while views still rely on
        it unless ``force`` is given (after which those views would fall
        back to planning errors on their next delta — the caller owns it).
        """
        self._drain_parallel()
        self.catalog.remove_auxiliary(name, force=force)
        for node in self.nodes:
            if node.has_fragment(name):
                node.drop_fragment(name)
        self._sync_replicas()

    def drop_global_index(self, name: str, force: bool = False) -> None:
        """Drop a global index (same safety rule as auxiliary relations)."""
        self._drain_parallel()
        self.catalog.remove_global_index(name, force=force)
        for node in self.nodes:
            node.drop_gi_partition(name)

    # ==================================================== elastic membership

    def add_node(self) -> MigrationReport:
        """Grow the cluster online (see :func:`repro.cluster.membership.add_node`)."""
        from .membership import add_node

        return add_node(self)

    def remove_node(self, node_id: int) -> MigrationReport:
        """Gracefully shrink the cluster online (charged migration off the
        departing node, dense renumbering of the survivors)."""
        from .membership import remove_node

        return remove_node(self, node_id)

    def fail_over(self, node_id: int) -> MigrationReport:
        """Decommission a crashed node, restoring its data from replicas."""
        from .membership import fail_over

        return fail_over(self, node_id)

    def enable_replication(self, k: int = 2) -> Replicator:
        """Keep ``k - 1`` charged replica copies of every fragment on each
        owner's ring successors.

        The initial copies are built uncharged (an offline build, like the
        catalog's DDL backfills); from then on every primary write ships
        its rows to the targets as modeled SENDs plus INSERT-weight replica
        writes, all tagged :attr:`~repro.costs.Tag.REPLICA`.  Replication
        keeps execution serial (the worker-pool gate closes) so the hooks
        observe every write in-process.
        """
        if self.replicator is not None:
            raise RuntimeError("replication is already enabled")
        self._drain_parallel()
        replicator = Replicator(self, k)
        self.replicator = replicator
        self.membership.replication = k
        for node in self.nodes:
            node.replicator = replicator
        replicator.sync(charged=False)
        return replicator

    def disable_replication(self) -> None:
        """Drop every replica bag and detach the write hooks (uncharged
        bookkeeping; the bags were never part of the primary state)."""
        if self.replicator is None:
            return
        self.replicator = None
        self.membership.replication = 1
        for node in self.nodes:
            node.replicator = None
            for owner, name in node.replica_slots():
                node.drop_replica(owner, name)

    def _sync_replicas(self) -> None:
        """Re-converge replica bags after a DDL reshapes fragments
        (uncharged, mirroring the uncharged DDL backfills)."""
        if self.replicator is not None:
            self.replicator.sync(charged=False)

    def available_rows(self, name: str) -> List[Row]:
        """Every reachable row of ``name``; crashed nodes' shares are served
        from their replicas (charged FETCHes at the serving holder)."""
        from .membership import available_rows

        return available_rows(self, name)

    # ================================================================= DML

    def insert(self, relation: str, rows: Iterable[Row]) -> CostSnapshot:
        """Insert rows into a base relation, maintaining all views over it.

        Returns the cost snapshot of everything this statement caused.
        """
        with self.ledger.measure() as measured:
            self._apply(relation, inserts=list(rows), deletes=[])
        return measured.snapshot

    def delete(self, relation: str, rows: Iterable[Row]) -> CostSnapshot:
        """Delete the given rows (one stored instance each) from a base
        relation, maintaining all views over it."""
        with self.ledger.measure() as measured:
            self._apply(relation, inserts=[], deletes=list(rows))
        return measured.snapshot

    def update(
        self, relation: str, changes: Iterable[Tuple[Row, Row]]
    ) -> CostSnapshot:
        """Update rows: ``changes`` pairs (old_row, new_row).

        Modelled as delete+insert within one maintained statement, per the
        paper's treatment of updates.
        """
        pairs = list(changes)
        with self.ledger.measure() as measured:
            self._apply(
                relation,
                inserts=[new for _, new in pairs],
                deletes=[old for old, _ in pairs],
            )
        return measured.snapshot

    def _apply(self, relation: str, inserts: List[Row], deletes: List[Row]) -> None:
        """Dispatch one maintained statement.

        With a fault controller attached the statement runs inside an
        atomic undo scope and faults route through the recovery policy
        (rollback, queue, degrade); otherwise this is the seed engine's
        direct path, charge-for-charge identical.
        """
        if self.faults is not None:
            self.faults.run_statement(relation, inserts, deletes)
        else:
            self._execute_statement(relation, inserts, deletes)

    def _bulk_ok(self) -> bool:
        """Whether the bulk write paths may run for this statement.

        Bulk application is charge-equivalent only where operation order is
        immaterial (commutative ledger cells / network counters) and no
        per-mutation undo records are needed.  With a fault controller or an
        open undo scope, the tuple-at-a-time reference path runs instead.
        """
        return (
            self.batch_execution
            and self.faults is None
            and not self._undo_logs
        )

    def _flush_stale_deferred(self, relation: str) -> None:
        """Refresh deferred views holding a *different* relation's delta
        before this statement's base writes land.

        The deferred correctness rule (:mod:`repro.core.deferred`) says a
        queued delta must never join against partner state from its
        future.  The wrapper's own relation-switch flush fires at
        maintenance time — after this statement's base writes — which is
        one write too late: the queued batch would join against a partner
        that already contains this statement's rows, and the statement's
        own delta would then count those pairs a second time.  Flushing
        here keeps the queued batch joined against exactly the partner
        state it observed.
        """
        for view in self.catalog.views_on(relation):
            maintainer = view.maintainer
            pending = getattr(maintainer, "_pending_relation", None)
            if pending is not None and pending != relation:
                maintainer.refresh()

    def _execute_statement(
        self, relation: str, inserts: List[Row], deletes: List[Row]
    ) -> None:
        """The paper's transaction sketch: base writes, co-updates, views."""
        engine = None
        if self.workers is not None:
            if self._views_parallel_safe(relation):
                engine = self._parallel_start()
            else:
                # A bespoke maintainer will mutate fragments outside the
                # superstep engine: drain so workers never go stale.
                self._drain_parallel()
        obs = self.obs
        with obs.span(
            "statement",
            relation=relation,
            inserts=len(inserts),
            deletes=len(deletes),
            engine=(
                "parallel" if engine is not None
                else "batched" if self._bulk_ok() else "reference"
            ),
        ) as stmt_span:
            if engine is not None:
                # Mutations run coordinator-side on the very same bulk
                # paths as the serial batched engine (charge-identical by
                # construction); the engine only accelerates the read hops
                # and collects per-statement transport telemetry here.
                engine.statements += 1
            self._flush_stale_deferred(relation)
            with obs.span("base_writes", relation=relation):
                info, delta = self._execute_base_writes(
                    relation, inserts, deletes
                )
            with obs.span("co_update_ars", relation=relation):
                self._co_update_auxiliaries(info, delta)
            with obs.span("co_update_gis", relation=relation):
                self._co_update_global_indexes(info, delta)
            # One shared delta-propagation DAG across all registered views
            # (falls back to the historical per-view loop for single-view
            # statements and every fault/undo path — see repro.core.shared).
            from ..core.shared import maintain_views

            maintain_views(self, delta)
        if obs.enabled:
            # Latency hook point: the statement's wall time comes from the
            # span the tracer just closed, never from a clock read here.
            obs.observe_span_latency(stmt_span, kind="statement", relation=relation)
        if self._sanitizer is not None:
            self._sanitizer.check(f"statement on {relation!r}")

    def _parallel_journal(self):
        """The running engine's refresh journal, or ``None`` (serial run).

        The bulk mutation paths append every physical base/AR/GI write here
        so worker read servers can lazily catch up (see
        :class:`~repro.cluster.parallel.RefreshJournal`).  View-fragment
        writes are deliberately not journaled: no read op targets them.
        """
        engine = self._parallel_engine
        if engine is not None and engine.running:
            return engine.journal
        return None

    def _execute_base_writes(
        self, relation: str, inserts: List[Row], deletes: List[Row]
    ) -> Tuple[RelationInfo, Delta]:
        """Apply just the base-relation writes; returns the placed delta.

        Also the degraded-mode entry point: when an AR/GI node is down and
        the recovery policy trades freshness for availability, only this
        part runs now (see :meth:`repro.faults.FaultController.recover`).
        """
        info = self.catalog.relation(relation)
        self._validate_deletes(info, deletes)
        for row in inserts:
            info.schema.check_row(row)
        delta = Delta(relation=relation)
        journal = self._parallel_journal()
        # Deletes first so an update whose new row equals another stored row
        # cannot delete the row it just inserted.
        for row in deletes:
            home = info.partitioner.node_of_row(row)
            rowid = self.nodes[home].delete_matching(relation, row, Tag.BASE)
            delta.deletes.append(PlacedRow(home, rowid, row))
            if journal is not None:
                journal.log_delete(home, relation, rowid, row, Tag.BASE)
            self._record_undo(
                lambda f=self.nodes[home].fragment(relation), r=rowid, t=row: (
                    f.restore(r, t)
                ),
                node=home, tag=Tag.BASE, writes=1,
                description=f"restore {relation} delete",
            )
        if inserts and self._bulk_ok():
            # Bulk path: group rows by home node (preserving per-home order,
            # so rowids match the per-tuple engine), then one insert_many per
            # node — one INSERT charge of count=n, same ledger cell sum.
            homes = [info.partitioner.node_of_row(row) for row in inserts]
            grouped: Dict[int, List[Row]] = {}
            for home, row in zip(homes, inserts):
                grouped.setdefault(home, []).append(row)
            rowid_lists = {
                home: self.nodes[home].insert_many(relation, rows, Tag.BASE)
                for home, rows in grouped.items()
            }
            if journal is not None:
                for home, rows in grouped.items():
                    journal.log_insert_run(
                        home, relation, rowid_lists[home], rows, Tag.BASE
                    )
            rowid_iters = {
                home: iter(rowids) for home, rowids in rowid_lists.items()
            }
            for home, row in zip(homes, inserts):
                delta.inserts.append(PlacedRow(home, next(rowid_iters[home]), row))
        else:
            for row in inserts:
                home = info.partitioner.node_of_row(row)
                rowid = self.nodes[home].insert(relation, row, Tag.BASE)
                delta.inserts.append(PlacedRow(home, rowid, row))
                self._record_undo(
                    lambda f=self.nodes[home].fragment(relation), r=rowid: f.delete(r),
                    node=home, tag=Tag.BASE, writes=1,
                    description=f"undo {relation} insert",
                )
        applied = len(inserts) - len(deletes)
        if applied:
            info.row_count += applied
            self._record_undo(
                lambda i=info, n=applied: setattr(i, "row_count", i.row_count - n),
                description=f"restore {relation} row_count",
            )
        return info, delta

    def _record_undo(
        self,
        undo: Callable[[], None],
        node: Optional[int] = None,
        tag: Optional[Tag] = None,
        writes: int = 0,
        description: str = "",
    ) -> None:
        """Record an inverse operation in the innermost undo scope.

        A no-op when no scope is active — the fault-free engine pays one
        truthiness test per mutation and nothing else.
        """
        if self._undo_logs:
            self._undo_logs[-1].record(
                undo, node=node, tag=tag, writes=writes, description=description
            )

    def _validate_deletes(self, info: RelationInfo, deletes: List[Row]) -> None:
        """Reject the whole statement if any requested delete cannot apply.

        Checked before any mutation so a failing statement leaves the
        cluster unchanged (statement atomicity).  Multiplicity-aware: the
        home fragment must hold at least as many copies of each row as the
        statement deletes.  Uncharged — this is validation, not execution.
        """
        if not deletes:
            return
        from collections import Counter

        requested = Counter(deletes)
        for row, count in requested.items():
            info.schema.check_row(row)
            home = info.partitioner.node_of_row(row)
            fragment = self.nodes[home].fragment(info.name)
            available = sum(1 for stored in fragment.table if stored == row)
            if available < count:
                raise KeyError(
                    f"cannot delete {count} instance(s) of {row!r} from "
                    f"{info.name!r}: node {home} holds {available}; "
                    "statement rolled back"
                )

    def _co_update_auxiliaries(self, info: RelationInfo, delta: Delta) -> None:
        """Propagate the base delta into every AR of the relation.

        Each delta tuple is redistributed (one SEND) to the node its AR
        partitioning key hashes to and written there — the "update auxiliary
        relation (cheap)" line of the paper's transaction sketch.
        """
        if self._bulk_ok():
            self._co_update_auxiliaries_bulk(info, delta)
            return
        for aux in self.catalog.auxiliaries_of(info.name):
            for placed in delta.deletes:
                image = aux.image_of(placed.row)
                if image is None:
                    continue
                dest = aux.partitioner.node_of_row(image)
                deliveries = self.network.send(placed.node, dest, Tag.MAINTAIN)
                for _ in range(deliveries):
                    try:
                        rowid = self.nodes[dest].delete_matching(
                            aux.name, image, Tag.MAINTAIN
                        )
                    except KeyError:
                        # A duplicated (un-deduped) delete found nothing: the
                        # first copy already removed the row.
                        break
                    self._record_undo(
                        lambda f=self.nodes[dest].fragment(aux.name),
                        r=rowid, t=image: f.restore(r, t),
                        node=dest, tag=Tag.MAINTAIN, writes=1,
                        description=f"restore {aux.name} delete",
                    )
            for placed in delta.inserts:
                image = aux.image_of(placed.row)
                if image is None:
                    continue
                dest = aux.partitioner.node_of_row(image)
                deliveries = self.network.send(placed.node, dest, Tag.MAINTAIN)
                for _ in range(deliveries):
                    rowid = self.nodes[dest].insert(aux.name, image, Tag.MAINTAIN)
                    self._record_undo(
                        lambda f=self.nodes[dest].fragment(aux.name),
                        r=rowid: f.delete(r),
                        node=dest, tag=Tag.MAINTAIN, writes=1,
                        description=f"undo {aux.name} insert",
                    )

    def _co_update_auxiliaries_bulk(self, info: RelationInfo, delta: Delta) -> None:  # repro: no-undo=_bulk_ok gates this path to run only with no open undo scope
        """Bulk AR co-update: coalesced sends, one insert_many per node.

        Charge-identical to the per-tuple loop (fault-free deliveries are
        always 1, ledger cells are commutative sums) and content-identical
        (per-destination row order is preserved, so rowids match).
        """
        for aux in self.catalog.auxiliaries_of(info.name):
            send_counts: Dict[Tuple[int, int], int] = {}
            routed_deletes: List[Tuple[int, Row]] = []
            for placed in delta.deletes:
                image = aux.image_of(placed.row)
                if image is None:
                    continue
                dest = aux.partitioner.node_of_row(image)
                link = (placed.node, dest)
                send_counts[link] = send_counts.get(link, 0) + 1
                routed_deletes.append((dest, image))
            grouped_inserts: Dict[int, List[Row]] = {}
            for placed in delta.inserts:
                image = aux.image_of(placed.row)
                if image is None:
                    continue
                dest = aux.partitioner.node_of_row(image)
                link = (placed.node, dest)
                send_counts[link] = send_counts.get(link, 0) + 1
                grouped_inserts.setdefault(dest, []).append(image)
            for (src, dst), count in send_counts.items():
                self.network.send_many(src, dst, count, Tag.MAINTAIN)
            journal = self._parallel_journal()
            for dest, image in routed_deletes:
                try:
                    rowid = self.nodes[dest].delete_matching(
                        aux.name, image, Tag.MAINTAIN
                    )
                except KeyError:
                    # A duplicated (un-deduped) delete found nothing: the
                    # first copy already removed the row.
                    continue
                if journal is not None:
                    journal.log_delete(dest, aux.name, rowid, image, Tag.MAINTAIN)
            for dest, images in grouped_inserts.items():
                rowids = self.nodes[dest].insert_many(
                    aux.name, images, Tag.MAINTAIN
                )
                if journal is not None:
                    journal.log_insert_run(
                        dest, aux.name, rowids, images, Tag.MAINTAIN
                    )

    def _co_update_global_indexes(self, info: RelationInfo, delta: Delta) -> None:
        """Propagate the base delta into every GI of the relation."""
        if self._bulk_ok():
            self._co_update_global_indexes_bulk(info, delta)
            return
        for gi in self.catalog.global_indexes_of(info.name):
            for placed in delta.deletes:
                key = placed.row[gi.key_position]
                dest = gi.home_node(key)
                grid = GlobalRowId(placed.node, placed.rowid)
                deliveries = self.network.send(placed.node, dest, Tag.MAINTAIN)
                for _ in range(deliveries):
                    try:
                        self.nodes[dest].gi_delete(gi.name, key, grid, Tag.MAINTAIN)
                    except KeyError:
                        break  # duplicated delete: the entry is already gone
                    self._record_undo(
                        lambda p=self.nodes[dest].gi_partition(gi.name),
                        k=key, g=grid: p.insert(k, g),
                        node=dest, tag=Tag.MAINTAIN, writes=1,
                        description=f"restore {gi.name} entry",
                    )
            for placed in delta.inserts:
                key = placed.row[gi.key_position]
                dest = gi.home_node(key)
                grid = GlobalRowId(placed.node, placed.rowid)
                deliveries = self.network.send(placed.node, dest, Tag.MAINTAIN)
                for _ in range(deliveries):
                    self.nodes[dest].gi_insert(gi.name, key, grid, Tag.MAINTAIN)
                    self._record_undo(
                        lambda p=self.nodes[dest].gi_partition(gi.name),
                        k=key, g=grid: p.delete(k, g),
                        node=dest, tag=Tag.MAINTAIN, writes=1,
                        description=f"undo {gi.name} entry",
                    )

    def _co_update_global_indexes_bulk(self, info: RelationInfo, delta: Delta) -> None:  # repro: no-undo=_bulk_ok gates this path to run only with no open undo scope
        """Bulk GI co-update: coalesced sends, one entry-batch per home node."""
        for gi in self.catalog.global_indexes_of(info.name):
            send_counts: Dict[Tuple[int, int], int] = {}
            routed_deletes: List[Tuple[int, object, GlobalRowId]] = []
            for placed in delta.deletes:
                key = placed.row[gi.key_position]
                dest = gi.home_node(key)
                link = (placed.node, dest)
                send_counts[link] = send_counts.get(link, 0) + 1
                routed_deletes.append((dest, key, GlobalRowId(placed.node, placed.rowid)))
            grouped_inserts: Dict[int, List[Tuple[object, GlobalRowId]]] = {}
            for placed in delta.inserts:
                key = placed.row[gi.key_position]
                dest = gi.home_node(key)
                link = (placed.node, dest)
                send_counts[link] = send_counts.get(link, 0) + 1
                grouped_inserts.setdefault(dest, []).append(
                    (key, GlobalRowId(placed.node, placed.rowid))
                )
            for (src, dst), count in send_counts.items():
                self.network.send_many(src, dst, count, Tag.MAINTAIN)
            journal = self._parallel_journal()
            for dest, key, grid in routed_deletes:
                try:
                    self.nodes[dest].gi_delete(gi.name, key, grid, Tag.MAINTAIN)
                except KeyError:
                    continue  # duplicated delete: the entry is already gone
                if journal is not None:
                    journal.log_gi_delete(dest, gi.name, key, grid, Tag.MAINTAIN)
            for dest, entries in grouped_inserts.items():
                self.nodes[dest].gi_partition(gi.name).insert_many(entries)
                self.ledger.charge(dest, Op.INSERT, Tag.MAINTAIN, count=len(entries))
                if journal is not None:
                    journal.log_gi_insert_run(dest, gi.name, entries, Tag.MAINTAIN)

    # ============================================== view delta application

    def apply_view_delta(
        self,
        view: ViewInfo,
        inserts: Sequence[Tuple[int, Row]],
        deletes: Sequence[Tuple[int, Row]],
    ) -> None:
        """Route computed view-delta rows from their join sites to the
        view's home nodes and write them there (tagged VIEW).

        For a hash-partitioned view each row goes to one node; deletions
        locate the victim through the view's index on the partitioning
        column.  For a round-robin view inserts spread across nodes and
        deletions must search node by node (there is no placement to
        exploit — the paper's "(b)" variants).
        """
        name = view.name
        if self._bulk_ok():
            # View writes always run coordinator-side (workers never read
            # view fragments, so they are not journaled either): a parallel
            # run takes exactly this bulk path, charge-identical to serial.
            with self.obs.span(
                "view_write", view=name, path="bulk",
                inserts=len(inserts), deletes=len(deletes),
            ):
                self._apply_view_delta_bulk(view, inserts, deletes)
            return
        with self.obs.span(
            "view_write", view=name, path="reference",
            inserts=len(inserts), deletes=len(deletes),
        ):
            self._apply_view_delta_per_tuple(view, inserts, deletes)

    def _apply_view_delta_per_tuple(
        self,
        view: ViewInfo,
        inserts: Sequence[Tuple[int, Row]],
        deletes: Sequence[Tuple[int, Row]],
    ) -> None:
        """The tuple-at-a-time reference path of :meth:`apply_view_delta`."""
        partitioner = view.partitioner
        name = view.name
        for source, row in deletes:
            if isinstance(partitioner, BoundRoundRobin):
                self._round_robin_delete(view, source, row)
            else:
                dest = partitioner.node_of_row(row)
                deliveries = self.network.send(source, dest, Tag.VIEW)
                for _ in range(deliveries):
                    try:
                        rowid = self.nodes[dest].delete_matching(name, row, Tag.VIEW)
                    except KeyError:
                        break  # duplicated delete: first copy already won
                    self._record_undo(
                        lambda f=self.nodes[dest].fragment(name),
                        r=rowid, t=row: f.restore(r, t),
                        node=dest, tag=Tag.VIEW, writes=1,
                        description=f"restore {name} delete",
                    )
            view.row_count -= 1
            self._record_undo(
                lambda v=view: setattr(v, "row_count", v.row_count + 1),
                description=f"restore {name} row_count",
            )
        for source, row in inserts:
            dest = partitioner.node_of_row(row)
            deliveries = self.network.send(source, dest, Tag.VIEW)
            for _ in range(deliveries):
                rowid = self.nodes[dest].insert(name, row, Tag.VIEW)
                self._record_undo(
                    lambda f=self.nodes[dest].fragment(name), r=rowid: f.delete(r),
                    node=dest, tag=Tag.VIEW, writes=1,
                    description=f"undo {name} insert",
                )
            view.row_count += 1
            self._record_undo(
                lambda v=view: setattr(v, "row_count", v.row_count - 1),
                description=f"restore {name} row_count",
            )

    def _apply_view_delta_bulk(  # repro: no-undo=_bulk_ok gates this path to run only with no open undo scope
        self,
        view: ViewInfo,
        inserts: Sequence[Tuple[int, Row]],
        deletes: Sequence[Tuple[int, Row]],
    ) -> None:
        """Bulk view-delta application: coalesced sends, one insert_many per
        destination fragment.

        Round-robin deletes stay per-row (their node-by-node search stops at
        the first match, so their cost depends on *where* each victim lives);
        everything else groups.  Destination computation runs in statement
        order, which keeps the stateful round-robin insert placement
        identical to the per-tuple engine.
        """
        partitioner = view.partitioner
        name = view.name
        if isinstance(partitioner, BoundRoundRobin):
            for source, row in deletes:
                self._round_robin_delete(view, source, row)
        else:
            send_counts: Dict[Tuple[int, int], int] = {}
            routed: List[Tuple[int, Row]] = []
            for source, row in deletes:
                dest = partitioner.node_of_row(row)
                link = (source, dest)
                send_counts[link] = send_counts.get(link, 0) + 1
                routed.append((dest, row))
            for (src, dst), count in send_counts.items():
                self.network.send_many(src, dst, count, Tag.VIEW)
            for dest, row in routed:
                try:
                    self.nodes[dest].delete_matching(name, row, Tag.VIEW)
                except KeyError:
                    pass  # duplicated delete: first copy already won
        view.row_count -= len(deletes)
        if inserts:
            send_counts = {}
            grouped: Dict[int, List[Row]] = {}
            for source, row in inserts:
                dest = partitioner.node_of_row(row)
                link = (source, dest)
                send_counts[link] = send_counts.get(link, 0) + 1
                grouped.setdefault(dest, []).append(row)
            for (src, dst), count in send_counts.items():
                self.network.send_many(src, dst, count, Tag.VIEW)
            for dest, rows in grouped.items():
                self.nodes[dest].insert_many(name, rows, Tag.VIEW)
            view.row_count += len(inserts)

    def _round_robin_delete(self, view: ViewInfo, source: int, row: Row) -> None:
        for node in self.nodes:
            self.network.send(source, node.node_id, Tag.VIEW)
            fragment = node.fragment(view.name)
            self.ledger.charge(node.node_id, Op.SEARCH, Tag.VIEW)
            for rowid, stored in fragment.table.scan():
                if stored == row:
                    node.delete_by_rowid(view.name, rowid, Tag.VIEW)
                    self._record_undo(
                        lambda f=fragment, r=rowid, t=row: f.restore(r, t),
                        node=node.node_id, tag=Tag.VIEW, writes=1,
                        description=f"restore {view.name} delete",
                    )
                    return
        raise KeyError(f"view {view.name!r} holds no tuple equal to {row!r}")

    # ================================================================ reads

    def scan_relation(self, name: str) -> List[Row]:
        """All rows of a base relation / AR across nodes (uncharged)."""
        rows: List[Row] = []
        for node in self.nodes:
            if node.has_fragment(name):
                rows.extend(node.scan(name))
        return rows

    def view_rows(self, name: str) -> List[Row]:
        """The materialized contents of a view across nodes (uncharged)."""
        self.catalog.view(name)
        return self.scan_relation(name)

    def fragment_sizes(self, name: str) -> Dict[int, int]:
        """Tuple count of each node's fragment of ``name``."""
        return {
            node.node_id: len(node.fragment(name).table)
            for node in self.nodes
            if node.has_fragment(name)
        }

    def relation_pages(self, name: str) -> int:
        """Total pages of a relation across all fragments."""
        return sum(
            node.fragment_pages(name) for node in self.nodes if node.has_fragment(name)
        )

    def storage_tuples(self) -> Dict[str, int]:
        """Tuples stored per catalog object — the space-overhead comparison
        of naive (none) vs GI (entries) vs AR (copies)."""
        usage: Dict[str, int] = {}
        for name in self.catalog.relations:
            usage[name] = len(self.scan_relation(name))
        for name in self.catalog.auxiliaries:
            usage[name] = len(self.scan_relation(name))
        for name, gi in self.catalog.global_indexes.items():
            usage[name] = sum(len(node.gi_partition(name)) for node in self.nodes)
        for name in self.catalog.views:
            usage[name] = len(self.scan_relation(name))
        return usage

    # ========================================================== transactions

    def transaction(self) -> "Transaction":
        """Scope several DML statements into one measured transaction."""
        from .transactions import Transaction

        return Transaction(self)
