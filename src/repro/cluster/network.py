"""The interconnect, as an accounting object.

The model charges a constant SEND per message regardless of size (paper
assumption 4) and charges nothing when source and destination coincide —
the "dashed lines" of Figures 2/4/6, where the message never leaves the
node.  Besides charging the ledger, the network keeps raw message counts so
tests can assert on communication patterns (e.g. the naive method really
does broadcast to all L nodes and the AR method really does send exactly
one message per delta tuple).

Unreliable mode (departure from the paper's fault-free assumption): when a
:class:`~repro.faults.injector.FaultInjector` is attached, every
cross-node message consults it.  Dropped messages are retried with
seeded, capped, jittered exponential backoff (a
:class:`~repro.faults.backoff.BackoffState`) up to ``max_retries`` times;
*every* attempt — the lost original and each retry — is charged to the
ledger as a SEND, so robustness overhead shows up in the paper's TW/RT
metrics.  The backoff slots themselves are tracked in
:attr:`NetworkStats.backoff_slots` *and* charged as ``Op.BACKOFF`` at the
sender (weight 0.0 under the paper's parameters).  Duplicated
messages charge two SENDs; receiver-side dedup (``dedup=True``) discards
the copy, otherwise :meth:`Network.send` reports two deliveries and the
caller applies twice.  Messages to a crashed node fail fast.  Without an
injector the code path and every charge are identical to the fault-free
engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple, TYPE_CHECKING

from ..costs import CostLedger, Op, Tag
from ..faults.backoff import BackoffState
from ..faults.errors import MessageLost, NodeDown
from ..faults.injector import MessageFate
from ..obs.collect import DISABLED

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.injector import FaultInjector


@dataclass(slots=True)
class NetworkStats:
    """Raw (unweighted) message counters.

    ``messages``/``by_link`` count *delivered* copies (a duplicated
    message counts twice); ``drops``/``retries``/``duplicates`` count
    fault events; ``backoff_slots`` accumulates the exponential-backoff
    wait slots retries spent (also charged as ``Op.BACKOFF`` cells).
    """

    messages: int = 0            # delivered copies that crossed the interconnect
    local_deliveries: int = 0    # src == dst, free per the paper
    by_link: Dict[Tuple[int, int], int] = field(default_factory=dict)
    drops: int = 0               # attempts the injector discarded
    duplicates: int = 0          # messages the injector delivered twice
    retries: int = 0             # re-send attempts after a drop
    backoff_slots: float = 0.0   # cumulative backoff wait (in slot units)

    def record(self, src: int, dst: int) -> None:
        if src == dst:
            self.local_deliveries += 1
            return
        self.messages += 1
        self.by_link[(src, dst)] = self.by_link.get((src, dst), 0) + 1


class Network:
    """Charges SENDs to the ledger and tallies message statistics."""

    __slots__ = (
        "num_nodes", "ledger", "stats",
        "injector", "max_retries", "dedup", "backoff", "obs",
    )

    def __init__(self, num_nodes: int, ledger: CostLedger) -> None:
        self.num_nodes = num_nodes
        self.ledger = ledger
        self.stats = NetworkStats()
        #: Fault hooks; installed by :func:`repro.faults.attach_faults`.
        self.injector: Optional["FaultInjector"] = None
        self.max_retries: int = 0
        self.dedup: bool = True
        self.backoff: BackoffState = BackoffState()
        #: Observability facade; swapped by ``attach_observability``.  The
        #: fault-free hot path never consults it — only the unreliable
        #: sender pushes live fault events, behind ``obs.enabled``.
        self.obs = DISABLED

    def _check(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise ValueError(f"node {node} out of range 0..{self.num_nodes - 1}")

    def send(self, src: int, dst: int, tag: Tag = Tag.MAINTAIN) -> int:
        """One message from ``src`` to ``dst``; free if they coincide.

        Returns the number of *deliveries* the receiver observes: always 1
        on the reliable path; under an injector, 2 for an un-deduplicated
        duplicate.  Raises :class:`~repro.faults.errors.MessageLost` when
        drops exhaust the retry budget and
        :class:`~repro.faults.errors.NodeDown` when an endpoint is crashed.
        """
        self._check(src)
        self._check(dst)
        if self.injector is None or src == dst:
            self.stats.record(src, dst)
            if src != dst:
                self.ledger.charge(src, Op.SEND, tag)
            return 1
        return self._send_unreliable(src, dst, tag)

    def _fault_event(self, kind: str, src: int, dst: int) -> None:
        """Push one live fault event (counter + trace instant) when armed."""
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter(
                "repro_network_fault_events_total",
                "Live fault events observed on the unreliable send path",
            ).inc(kind=kind, src=src, dst=dst)
            obs.event("network.fault", kind=kind, src=src, dst=dst)

    def _send_unreliable(self, src: int, dst: int, tag: Tag) -> int:
        assert self.injector is not None
        attempts = 0
        while True:
            attempts += 1
            fate = self.injector.on_message(src, dst)
            if fate is MessageFate.SRC_DOWN:
                # A dead node sends nothing: no charge, fail immediately.
                self._fault_event("src_down", src, dst)
                raise NodeDown(src, f"cannot send to node {dst}")
            # The attempt goes on the wire: charge the sender.
            self.ledger.charge(src, Op.SEND, tag)
            if fate is MessageFate.DEST_DOWN:
                # Fail fast: retrying a crashed peer is pointless until the
                # recovery layer restarts it.
                self.stats.drops += 1
                self._fault_event("dest_down", src, dst)
                raise NodeDown(dst, f"message from node {src} undeliverable")
            if fate is MessageFate.DROPPED:
                self.stats.drops += 1
                if attempts > self.max_retries:
                    self._fault_event("lost", src, dst)
                    raise MessageLost(src, dst, attempts)
                # Seeded, capped, jittered exponential backoff before the
                # retry; the wait is charged as BACKOFF slots at the sender.
                self.stats.retries += 1
                slots = self.backoff.slots(attempts)
                self.stats.backoff_slots += slots
                self.ledger.charge(src, Op.BACKOFF, tag, count=slots)
                self._fault_event("retry", src, dst)
                continue
            if fate is MessageFate.DUPLICATED:
                self._fault_event("duplicate", src, dst)
                self.stats.record(src, dst)
                self.stats.record(src, dst)
                self.stats.duplicates += 1
                # The duplicate copy also crossed the wire: charge it too.
                self.ledger.charge(src, Op.SEND, tag)
                return 1 if self.dedup else 2
            self.stats.record(src, dst)
            return 1

    # ------------------------------------------------------ coalesced sends

    def send_many(self, src: int, dst: int, count: int, tag: Tag = Tag.MAINTAIN) -> int:
        """``count`` logical messages from ``src`` to ``dst`` as one envelope.

        The batched execution engine's coalescing primitive: one
        Python-level delivery that charges exactly the N modeled SENDs the
        per-tuple engine would (stats and ledger are commutative sums, so
        the totals are bit-identical).  With a fault injector attached every
        *logical* message still consults the injector individually — drops,
        retries, and duplicates behave exactly as N separate :meth:`send`
        calls, preserving the PR 1 fault semantics.

        Returns the total number of deliveries the receiver observes.
        """
        if count <= 0:
            return 0
        self._check(src)
        self._check(dst)
        if self.injector is None or src == dst:
            stats = self.stats
            if src == dst:
                stats.local_deliveries += count
            else:
                stats.messages += count
                link = (src, dst)  # precomputed once per envelope
                by_link = stats.by_link
                by_link[link] = by_link.get(link, 0) + count
                self.ledger.charge(src, Op.SEND, tag, count=count)
            return count
        return sum(self._send_unreliable(src, dst, tag) for _ in range(count))

    def broadcast_many(self, src: int, count: int, tag: Tag = Tag.MAINTAIN) -> None:
        """``count`` logical broadcasts from ``src`` in one envelope per link.

        Mirrors :meth:`broadcast` charge-for-charge: every one of the
        ``count`` logical messages is charged for all L destinations,
        including the self-delivery (Figure 2 draws L solid arrows).  Under
        an injector each logical leg routes through the per-message retry
        machinery, exactly like ``count`` separate broadcasts.
        """
        if count <= 0:
            return
        self._check(src)
        stats = self.stats
        by_link = stats.by_link
        injector = self.injector
        charge = self.ledger.charge
        for dst in range(self.num_nodes):
            if injector is None or dst == src:
                if dst == src:
                    stats.local_deliveries += count
                else:
                    stats.messages += count
                    link = (src, dst)  # precomputed once per envelope
                    by_link[link] = by_link.get(link, 0) + count
                # broadcast() charges the self-leg too, unlike send().
                charge(src, Op.SEND, tag, count=count)
            else:
                for _ in range(count):
                    self.send(src, dst, tag)

    def broadcast(self, src: int, tag: Tag = Tag.MAINTAIN) -> Iterable[int]:
        """Send to *every* node (the naive method's redistribution).

        The paper charges L sends for a broadcast — the self-delivery is
        counted too, because the message is materialized for all L
        destinations (Figure 2 draws L solid arrows).  Yields destination
        node ids so callers can do per-node work.
        """
        self._check(src)
        for dst in range(self.num_nodes):
            if self.injector is None or dst == src:
                self.stats.record(src, dst)
                self.ledger.charge(src, Op.SEND, tag)
            else:
                # Unreliable legs of the broadcast go through the retry
                # machinery; a permanently lost leg aborts the statement
                # (the naive method cannot skip a node).
                self.send(src, dst, tag)
            yield dst

    def reset_stats(self) -> None:
        self.stats = NetworkStats()
