"""The interconnect, as an accounting object.

The model charges a constant SEND per message regardless of size (paper
assumption 4) and charges nothing when source and destination coincide —
the "dashed lines" of Figures 2/4/6, where the message never leaves the
node.  Besides charging the ledger, the network keeps raw message counts so
tests can assert on communication patterns (e.g. the naive method really
does broadcast to all L nodes and the AR method really does send exactly
one message per delta tuple).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from ..costs import CostLedger, Op, Tag


@dataclass
class NetworkStats:
    """Raw (unweighted) message counters."""

    messages: int = 0            # messages that crossed the interconnect
    local_deliveries: int = 0    # src == dst, free per the paper
    by_link: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def record(self, src: int, dst: int) -> None:
        if src == dst:
            self.local_deliveries += 1
            return
        self.messages += 1
        self.by_link[(src, dst)] = self.by_link.get((src, dst), 0) + 1


class Network:
    """Charges SENDs to the ledger and tallies message statistics."""

    def __init__(self, num_nodes: int, ledger: CostLedger) -> None:
        self.num_nodes = num_nodes
        self.ledger = ledger
        self.stats = NetworkStats()

    def _check(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise ValueError(f"node {node} out of range 0..{self.num_nodes - 1}")

    def send(self, src: int, dst: int, tag: Tag = Tag.MAINTAIN) -> None:
        """One message from ``src`` to ``dst``; free if they coincide."""
        self._check(src)
        self._check(dst)
        self.stats.record(src, dst)
        if src != dst:
            self.ledger.charge(src, Op.SEND, tag)

    def broadcast(self, src: int, tag: Tag = Tag.MAINTAIN) -> Iterable[int]:
        """Send to *every* node (the naive method's redistribution).

        The paper charges L sends for a broadcast — the self-delivery is
        counted too, because the message is materialized for all L
        destinations (Figure 2 draws L solid arrows).  Yields destination
        node ids so callers can do per-node work.
        """
        for dst in range(self.num_nodes):
            self._check(src)
            self.stats.record(src, dst)
            self.ledger.charge(src, Op.SEND, tag)
            yield dst

    def reset_stats(self) -> None:
        self.stats = NetworkStats()
