"""Transaction scoping for cost attribution.

The paper's unit of evaluation is "one transaction that inserts A tuples".
A :class:`Transaction` groups several DML statements, applies them eagerly
(this engine models cost, not isolation — see DESIGN.md §6), and reports the
combined cost snapshot with the paper's two metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Tuple

from ..costs import CostSnapshot, Tag
from ..storage.schema import Row

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import Cluster


@dataclass
class TransactionReport:
    """Summary of one transaction's accounted work."""

    snapshot: CostSnapshot
    statements: int

    @property
    def total_workload(self) -> float:
        """TW over every tag (base + maintenance + view)."""
        return self.snapshot.total_workload()

    @property
    def maintenance_workload(self) -> float:
        """The paper's TW: differential maintenance I/Os only."""
        return self.snapshot.maintenance_workload()

    @property
    def maintenance_response_time(self) -> float:
        """Max per-node maintenance I/Os — the paper's response-time metric."""
        return self.snapshot.maintenance_response_time()

    @property
    def response_time(self) -> float:
        return self.snapshot.response_time()


class Transaction:
    """Context manager grouping DML statements into one measurement.

    >>> with cluster.transaction() as txn:
    ...     txn.insert("A", rows)
    >>> txn.report.maintenance_workload  # doctest: +SKIP
    """

    def __init__(self, cluster: "Cluster") -> None:
        self._cluster = cluster
        self._statements = 0
        self._before: Optional[CostSnapshot] = None
        self.report: Optional[TransactionReport] = None

    def __enter__(self) -> "Transaction":
        if self._before is not None:
            raise RuntimeError("transaction already entered")
        self._before = self._cluster.ledger.snapshot()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._before is not None
        snapshot = self._cluster.ledger.diff_since(self._before)
        self.report = TransactionReport(snapshot=snapshot, statements=self._statements)

    def _check_open(self) -> None:
        if self._before is None or self.report is not None:
            raise RuntimeError("transaction is not open")

    def insert(self, relation: str, rows: Iterable[Row]) -> None:
        self._check_open()
        self._statements += 1
        self._cluster.insert(relation, rows)

    def delete(self, relation: str, rows: Iterable[Row]) -> None:
        self._check_open()
        self._statements += 1
        self._cluster.delete(relation, rows)

    def update(self, relation: str, changes: Iterable[Tuple[Row, Row]]) -> None:
        self._check_open()
        self._statements += 1
        self._cluster.update(relation, changes)
