"""Transaction scoping for cost attribution and atomicity.

The paper's unit of evaluation is "one transaction that inserts A tuples".
A :class:`Transaction` groups several DML statements, applies them eagerly
(this engine models cost, not isolation — see DESIGN.md §6), and reports the
combined cost snapshot with the paper's two metrics.

Since the fault-injection work the transaction also owns a real physical
:class:`~repro.faults.undo.UndoLog`: every statement's mutations (base
fragments, auxiliary relations, GI partitions, view fragments, catalog row
counts) record their inverses into it, so :meth:`Transaction.rollback` — or
an exception escaping the ``with`` block — restores the cluster to the state
at ``__enter__``, rowids included.  Undone writes are charged only when a
fault controller with ``charge_rollback`` is attached; a plain rollback is
bookkeeping, keeping fault-free ledgers identical to the seed engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Tuple

from ..costs import CostSnapshot, Tag
from ..faults.undo import UndoLog
from ..storage.schema import Row

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import Cluster


@dataclass
class TransactionReport:
    """Summary of one transaction's accounted work."""

    snapshot: CostSnapshot
    statements: int
    rolled_back: bool = False

    @property
    def total_workload(self) -> float:
        """TW over every tag (base + maintenance + view)."""
        return self.snapshot.total_workload()

    @property
    def maintenance_workload(self) -> float:
        """The paper's TW: differential maintenance I/Os only."""
        return self.snapshot.maintenance_workload()

    @property
    def maintenance_response_time(self) -> float:
        """Max per-node maintenance I/Os — the paper's response-time metric."""
        return self.snapshot.maintenance_response_time()

    @property
    def response_time(self) -> float:
        return self.snapshot.response_time()


class Transaction:
    """Context manager grouping DML statements into one measurement.

    >>> with cluster.transaction() as txn:
    ...     txn.insert("A", rows)
    >>> txn.report.maintenance_workload  # doctest: +SKIP
    """

    def __init__(self, cluster: "Cluster") -> None:
        self._cluster = cluster
        self._statements = 0
        self._before: Optional[CostSnapshot] = None
        self._undo: Optional[UndoLog] = None
        self._rolled_back = False
        self.report: Optional[TransactionReport] = None

    def __enter__(self) -> "Transaction":
        if self._before is not None:
            raise RuntimeError("transaction already entered")
        self._before = self._cluster.ledger.snapshot()
        self._undo = UndoLog()
        self._cluster._undo_logs.append(self._undo)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._before is not None
        if self._undo is not None:
            log = self._undo
            self._undo = None
            if log in self._cluster._undo_logs:
                self._cluster._undo_logs.remove(log)
            if exc_type is not None:
                # An escaping exception aborts the transaction: restore the
                # cluster to the state at __enter__.
                log.rollback(
                    ledger=self._cluster.ledger, charge=self._charge_rollback()
                )
                self._rolled_back = True
            elif self._cluster._undo_logs:
                # Nested inside an enclosing scope: release the savepoint.
                log.merge_into(self._cluster._undo_logs[-1])
            else:
                log.discard()
        snapshot = self._cluster.ledger.diff_since(self._before)
        self.report = TransactionReport(
            snapshot=snapshot,
            statements=self._statements,
            rolled_back=self._rolled_back,
        )

    def rollback(self) -> None:
        """Undo every statement of this transaction, in reverse order.

        Restores base fragments, auxiliary relations, global indexes, view
        fragments, and catalog row counts — including rowids, so GI
        rid-lists remain valid.  The transaction is closed to further DML
        afterwards (as in SQL, ROLLBACK ends the transaction).
        """
        self._check_open()
        assert self._undo is not None
        log = self._undo
        self._undo = None
        self._cluster._undo_logs.remove(log)
        log.rollback(ledger=self._cluster.ledger, charge=self._charge_rollback())
        self._rolled_back = True

    def _charge_rollback(self) -> bool:
        faults = self._cluster.faults
        return faults is not None and faults.policy.charge_rollback

    def _check_open(self) -> None:
        if self._before is None or self.report is not None or self._rolled_back:
            raise RuntimeError("transaction is not open")

    def insert(self, relation: str, rows: Iterable[Row]) -> None:
        self._check_open()
        self._statements += 1
        self._cluster.insert(relation, rows)

    def delete(self, relation: str, rows: Iterable[Row]) -> None:
        self._check_open()
        self._statements += 1
        self._cluster.delete(relation, rows)

    def update(self, relation: str, changes: Iterable[Tuple[Row, Row]]) -> None:
        self._check_open()
        self._statements += 1
        self._cluster.update(relation, changes)
