"""Horizontal partitioning of relations across data-server nodes.

Everything the paper studies hinges on *where* a tuple lives: a relation
hash-partitioned on its join attribute needs no auxiliary structures, while
one partitioned on anything else forces the all-node naive maintenance this
paper sets out to avoid.

Hashing must be deterministic across processes (Python's ``hash`` of str is
salted per process), so keys are hashed with CRC-32 over their repr; small
non-negative integers map to themselves, which both spreads sequential keys
evenly and reproduces the paper's exact ``ceil(A/L)`` step-wise behaviour
for uniformly distributed keys.
"""

from __future__ import annotations

import bisect
import hashlib
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..storage.schema import Row, Schema


def stable_hash(value: object) -> int:
    """A process-stable non-negative hash of a partitioning key."""
    if isinstance(value, bool):  # bool is an int subclass; keep distinct
        return int(value)
    if isinstance(value, int) and value >= 0:
        return value
    return zlib.crc32(repr(value).encode("utf-8"))


@dataclass(frozen=True)
class HashPartitioning:
    """Declarative spec: hash-partition on ``column``."""

    column: str

    def bind(self, schema: Schema, num_nodes: int) -> "BoundPartitioner":
        return BoundPartitioner(self, schema, num_nodes)

    def describe(self) -> str:
        return f"hash({self.column})"


@dataclass(frozen=True)
class RoundRobinPartitioning:
    """Declarative spec: spread rows round-robin (no placement attribute).

    Used for views "not partitioned on an attribute of A" (the (b) variants
    of the paper's figures): result tuples are distributed across nodes with
    no locality the maintainer could exploit.
    """

    def bind(self, schema: Schema, num_nodes: int) -> "BoundRoundRobin":
        return BoundRoundRobin(schema, num_nodes)

    def describe(self) -> str:
        return "round-robin"


@dataclass(frozen=True)
class ConsistentHashPartitioning:
    """Declarative spec: place rows on a consistent-hash ring over ``column``.

    Unlike modulo hashing — where growing L to L+1 remaps nearly every key —
    a ring with ``vnodes`` virtual points per node relocates only ~1/(L+1) of
    the keys on a node join, which is what makes online elasticity affordable
    (the minimal-movement invariant tested in ``tests/test_partitioning.py``).
    Ring points are derived from stable per-node *tokens*, not node ids, so
    the dense-id renumbering a node departure triggers does not move any
    surviving node's ring position.
    """

    column: str
    vnodes: int = 64

    def bind(
        self,
        schema: Schema,
        num_nodes: int,
        tokens: Optional[Sequence[int]] = None,
        weights: Optional[Dict[int, int]] = None,
    ) -> "BoundConsistentHash":
        if tokens is None:
            tokens = list(range(num_nodes))
        return BoundConsistentHash(self, schema, list(tokens), weights)

    def describe(self) -> str:
        return f"consistent({self.column})"


PartitioningSpec = (
    HashPartitioning | RoundRobinPartitioning | ConsistentHashPartitioning
)


def _ring_point(data: str) -> int:
    """A process-stable, well-mixed position on the 64-bit ring."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class BoundPartitioner:
    """A hash partitioning bound to a concrete schema and node count."""

    def __init__(self, spec: HashPartitioning, schema: Schema, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        self.spec = spec
        self.schema = schema
        self.num_nodes = num_nodes
        self.column = spec.column
        self._position = schema.index_of(spec.column)

    @property
    def is_hash(self) -> bool:
        return True

    def node_of_key(self, key: object) -> int:
        return stable_hash(key) % self.num_nodes

    def node_of_row(self, row: Row) -> int:
        return self.node_of_key(row[self._position])

    def key_of_row(self, row: Row) -> object:
        return row[self._position]

    def split(self, rows: Iterable[Row]) -> Dict[int, List[Row]]:
        """Group rows by destination node."""
        by_node: Dict[int, List[Row]] = {}
        for row in rows:
            by_node.setdefault(self.node_of_row(row), []).append(row)
        return by_node

    def rebind(self, num_nodes: int, tokens: Optional[Sequence[int]] = None) -> "BoundPartitioner":
        """A fresh binding against a changed node count (modulo remap)."""
        return BoundPartitioner(self.spec, self.schema, num_nodes)


class BoundConsistentHash:
    """A consistent-hash ring bound to a schema and a set of node tokens.

    ``tokens[i]`` is the stable identity of node id ``i``; each token owns
    ``weights.get(token, spec.vnodes)`` points on a 64-bit ring.  A key is
    placed on the first ring point at or after its hash (wrapping), and the
    point's token resolves to the *current* node id — so renumbering node
    ids only updates the token list, never the ring geometry.  Points and
    key positions use blake2b (CRC-32 of near-identical short strings
    clusters badly, which would defeat the vnode spreading).
    """

    def __init__(
        self,
        spec: ConsistentHashPartitioning,
        schema: Schema,
        tokens: Sequence[int],
        weights: Optional[Dict[int, int]] = None,
    ) -> None:
        if len(tokens) < 1:
            raise ValueError("a cluster needs at least one node")
        if len(set(tokens)) != len(tokens):
            raise ValueError("node tokens must be unique")
        self.spec = spec
        self.schema = schema
        self.tokens = list(tokens)
        self.weights = dict(weights or {})
        self.num_nodes = len(self.tokens)
        self.column = spec.column
        self._position = schema.index_of(spec.column)
        self._node_of_token = {t: i for i, t in enumerate(self.tokens)}
        points: List[Tuple[int, int]] = []
        for token in self.tokens:
            count = max(1, self.weights.get(token, spec.vnodes))
            for v in range(count):
                points.append((_ring_point(f"vnode:{token}:{v}"), token))
        # Ties (hash collisions across tokens) break by token for determinism.
        points.sort()
        self._points = [p for p, _t in points]
        self._owners = [t for _p, t in points]

    @property
    def is_hash(self) -> bool:
        return True

    def token_of_key(self, key: object) -> int:
        # stable_hash maps small ints to themselves (the paper's modulo
        # behaviour needs that), which would pile sequential keys onto one
        # arc of the ring — scramble it onto the full circle first.
        point = _ring_point(f"key:{stable_hash(key)}")
        index = bisect.bisect_left(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def node_of_key(self, key: object) -> int:
        return self._node_of_token[self.token_of_key(key)]

    def node_of_row(self, row: Row) -> int:
        return self.node_of_key(row[self._position])

    def key_of_row(self, row: Row) -> object:
        return row[self._position]

    def split(self, rows: Iterable[Row]) -> Dict[int, List[Row]]:
        """Group rows by destination node."""
        by_node: Dict[int, List[Row]] = {}
        for row in rows:
            by_node.setdefault(self.node_of_row(row), []).append(row)
        return by_node

    def rebind(
        self,
        num_nodes: int,
        tokens: Optional[Sequence[int]] = None,
        weights: Optional[Dict[int, int]] = None,
    ) -> "BoundConsistentHash":
        """A fresh ring for a changed membership (minimal-movement remap)."""
        if tokens is None:
            tokens = list(range(num_nodes))
        if len(tokens) != num_nodes:
            raise ValueError("token list must match the node count")
        if weights is None:
            weights = self.weights
        return BoundConsistentHash(self.spec, self.schema, list(tokens), weights)


class BoundRoundRobin:
    """Round-robin placement bound to a node count; stateful cursor."""

    def __init__(self, schema: Schema, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        self.schema = schema
        self.num_nodes = num_nodes
        self._cursor = 0

    @property
    def is_hash(self) -> bool:
        return False

    @property
    def column(self) -> None:
        return None

    def node_of_row(self, row: Row) -> int:
        node = self._cursor
        self._cursor = (self._cursor + 1) % self.num_nodes
        return node

    def split(self, rows: Iterable[Row]) -> Dict[int, List[Row]]:
        by_node: Dict[int, List[Row]] = {}
        for row in rows:
            by_node.setdefault(self.node_of_row(row), []).append(row)
        return by_node

    def rebind(self, num_nodes: int, tokens: Optional[Sequence[int]] = None) -> "BoundRoundRobin":
        """Shrink/grow the cycle in place; the cursor survives, clamped."""
        if num_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        self.num_nodes = num_nodes
        self._cursor %= num_nodes
        return self


def spread_evenly(keys: Sequence[object], num_nodes: int) -> Dict[int, int]:
    """Histogram of nodes hit by ``keys`` under hash placement (test helper)."""
    histogram: Dict[int, int] = {}
    for key in keys:
        node = stable_hash(key) % num_nodes
        histogram[node] = histogram.get(node, 0) + 1
    return histogram
