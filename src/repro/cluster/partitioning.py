"""Horizontal partitioning of relations across data-server nodes.

Everything the paper studies hinges on *where* a tuple lives: a relation
hash-partitioned on its join attribute needs no auxiliary structures, while
one partitioned on anything else forces the all-node naive maintenance this
paper sets out to avoid.

Hashing must be deterministic across processes (Python's ``hash`` of str is
salted per process), so keys are hashed with CRC-32 over their repr; small
non-negative integers map to themselves, which both spreads sequential keys
evenly and reproduces the paper's exact ``ceil(A/L)`` step-wise behaviour
for uniformly distributed keys.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..storage.schema import Row, Schema


def stable_hash(value: object) -> int:
    """A process-stable non-negative hash of a partitioning key."""
    if isinstance(value, bool):  # bool is an int subclass; keep distinct
        return int(value)
    if isinstance(value, int) and value >= 0:
        return value
    return zlib.crc32(repr(value).encode("utf-8"))


@dataclass(frozen=True)
class HashPartitioning:
    """Declarative spec: hash-partition on ``column``."""

    column: str

    def bind(self, schema: Schema, num_nodes: int) -> "BoundPartitioner":
        return BoundPartitioner(self, schema, num_nodes)

    def describe(self) -> str:
        return f"hash({self.column})"


@dataclass(frozen=True)
class RoundRobinPartitioning:
    """Declarative spec: spread rows round-robin (no placement attribute).

    Used for views "not partitioned on an attribute of A" (the (b) variants
    of the paper's figures): result tuples are distributed across nodes with
    no locality the maintainer could exploit.
    """

    def bind(self, schema: Schema, num_nodes: int) -> "BoundRoundRobin":
        return BoundRoundRobin(schema, num_nodes)

    def describe(self) -> str:
        return "round-robin"


PartitioningSpec = HashPartitioning | RoundRobinPartitioning


class BoundPartitioner:
    """A hash partitioning bound to a concrete schema and node count."""

    def __init__(self, spec: HashPartitioning, schema: Schema, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        self.spec = spec
        self.schema = schema
        self.num_nodes = num_nodes
        self.column = spec.column
        self._position = schema.index_of(spec.column)

    @property
    def is_hash(self) -> bool:
        return True

    def node_of_key(self, key: object) -> int:
        return stable_hash(key) % self.num_nodes

    def node_of_row(self, row: Row) -> int:
        return self.node_of_key(row[self._position])

    def key_of_row(self, row: Row) -> object:
        return row[self._position]

    def split(self, rows: Iterable[Row]) -> Dict[int, List[Row]]:
        """Group rows by destination node."""
        by_node: Dict[int, List[Row]] = {}
        for row in rows:
            by_node.setdefault(self.node_of_row(row), []).append(row)
        return by_node


class BoundRoundRobin:
    """Round-robin placement bound to a node count; stateful cursor."""

    def __init__(self, schema: Schema, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        self.schema = schema
        self.num_nodes = num_nodes
        self._cursor = 0

    @property
    def is_hash(self) -> bool:
        return False

    @property
    def column(self) -> None:
        return None

    def node_of_row(self, row: Row) -> int:
        node = self._cursor
        self._cursor = (self._cursor + 1) % self.num_nodes
        return node

    def split(self, rows: Iterable[Row]) -> Dict[int, List[Row]]:
        by_node: Dict[int, List[Row]] = {}
        for row in rows:
            by_node.setdefault(self.node_of_row(row), []).append(row)
        return by_node


def spread_evenly(keys: Sequence[object], num_nodes: int) -> Dict[int, int]:
    """Histogram of nodes hit by ``keys`` under hash placement (test helper)."""
    histogram: Dict[int, int] = {}
    for key in keys:
        node = stable_hash(key) % num_nodes
        histogram[node] = histogram.get(node, 0) + 1
    return histogram
