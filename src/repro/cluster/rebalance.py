"""Metrics-driven rebalancing of the consistent-hash ring.

The elastic membership layer makes *where* data lives a runtime decision;
this module closes the loop by reading the same observability gauges an
operator would (:func:`repro.obs.collect_cluster_metrics`) and shifting
ring weight away from hot nodes:

* the **primary signal** is ``repro_node_load_ios`` — each node's lifetime
  weighted I/Os straight from the cost ledger;
* the **secondary signal** is ``repro_worker_busy_ns`` skew from a running
  worker pool.  Since PR 7 workers are read servers whose probes are
  slot-routed, busy time has no exact node mapping; each worker's total is
  spread over a contiguous node range (a deterministic approximation) and
  breaks ties when the modeled ledger is balanced but wall-clock work is
  not.

A proposal moves ``step`` virtual nodes of ring weight from the hottest
node's token to the coldest's; executing it rebinds every consistent-hash
partitioner and ships the relocated rows through the exact charged
migration path membership changes use (SENDs tagged ``MIGRATE``, handoff/
migrate envelopes).  Modulo-hash and round-robin objects are untouched —
with an unchanged node count their placement cannot change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..costs import Tag
from ..obs.collect import collect_cluster_metrics
from ..obs.metrics import MetricsRegistry
from .membership import (
    _execute_moves,
    _partitioned_objects,
    _plan_moves,
    _rebind,
    _replication_paused,
    _require_elastic_views,
)
from .partitioning import BoundConsistentHash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import Cluster


@dataclass
class RebalanceProposal:
    """A single weight shift the load signal justifies."""

    hot_node: int
    cold_node: int
    hot_token: int
    cold_token: int
    skew: float
    loads: Dict[int, float]
    step: int

    def describe(self) -> str:
        return (
            f"skew {self.skew:.2f}: shift {self.step} vnode(s) from node "
            f"{self.hot_node} (token {self.hot_token}) to node "
            f"{self.cold_node} (token {self.cold_token})"
        )


@dataclass
class RebalanceReport:
    """What one executed rebalance moved."""

    proposal: RebalanceProposal
    epoch: int
    moved: Dict[str, int] = field(default_factory=dict)

    @property
    def moved_rows(self) -> int:
        return sum(self.moved.values())


class Rebalancer:
    """Observes per-node load and evens it out with charged migrations.

    ``skew_threshold`` is the max/mean load ratio above which a shift is
    proposed (1.0 means perfectly even; the default tolerates 25% excess).
    ``step`` is how many ring vnodes one rebalance moves; ``min_weight``
    floors a token's weight so no node ever leaves the ring entirely.
    """

    def __init__(
        self,
        cluster: "Cluster",
        skew_threshold: float = 1.25,
        step: int = 1,
        min_weight: int = 1,
    ) -> None:
        if skew_threshold < 1.0:
            raise ValueError("skew_threshold must be >= 1.0")
        if step < 1 or min_weight < 1:
            raise ValueError("step and min_weight must be >= 1")
        self.cluster = cluster
        self.skew_threshold = skew_threshold
        self.step = step
        self.min_weight = min_weight

    # ------------------------------------------------------------ signals

    def load_by_node(self) -> Dict[int, float]:
        """The per-node load signal, read back from the metrics gauges.

        Ledger I/Os dominate; worker busy-ns — folded onto contiguous node
        ranges as a deterministic approximation, since read-server probes
        are slot-routed rather than node-sharded — enters at nanosecond
        scale, so it only decides between nodes the ledger considers equal.
        """
        cluster = self.cluster
        registry = collect_cluster_metrics(cluster, MetricsRegistry())
        ios = registry.gauge(
            "repro_node_load_ios",
            "Weighted I/Os charged per node over the cluster's lifetime — the "
            "rebalancer's primary load signal",
        )
        loads = {
            node: ios.get(node=node) for node in range(cluster.num_nodes)
        }
        engine = cluster._parallel_engine
        if engine is not None and engine.running:
            from .parallel import shard_ranges

            busy = registry.gauge(
                "repro_worker_busy_ns",
                "Cumulative busy nanoseconds per pool worker (skew feeds the "
                "rebalancer's secondary signal)",
            )
            ranges = shard_ranges(cluster.num_nodes, len(engine.worker_busy_ns))
            for worker_id, (start, stop) in enumerate(ranges):
                width = max(1, stop - start)
                share = busy.get(worker=worker_id) / width
                for node in range(start, stop):
                    # 1 ns == 1e-9 modeled I/Os: a pure tiebreaker.
                    loads[node] = loads.get(node, 0.0) + share * 1e-9
        return loads

    def _consistent_vnodes(self) -> Optional[int]:
        """The default vnode count of the ring objects (None when no
        consistent-hash object exists — then there is nothing to shift)."""
        for _name, info in _partitioned_objects(self.cluster):
            partitioner = info.partitioner  # type: ignore[attr-defined]
            if isinstance(partitioner, BoundConsistentHash):
                return partitioner.spec.vnodes
        return None

    # ----------------------------------------------------------- proposal

    def propose(self) -> Optional[RebalanceProposal]:
        """A weight shift, or ``None`` when load is within tolerance (or
        nothing consistent-hashed exists to move)."""
        cluster = self.cluster
        if cluster.num_nodes < 2 or self._consistent_vnodes() is None:
            return None
        loads = self.load_by_node()
        total = sum(loads.values())
        if total <= 0.0:
            return None
        mean = total / cluster.num_nodes
        hot = max(sorted(loads), key=lambda n: loads[n])
        cold = min(sorted(loads), key=lambda n: loads[n])
        skew = loads[hot] / mean
        if skew <= self.skew_threshold or hot == cold:
            return None
        membership = cluster.membership
        return RebalanceProposal(
            hot_node=hot,
            cold_node=cold,
            hot_token=membership.tokens[hot],
            cold_token=membership.tokens[cold],
            skew=skew,
            loads=loads,
            step=self.step,
        )

    # ---------------------------------------------------------- execution

    def execute(self, proposal: RebalanceProposal) -> RebalanceReport:
        """Apply a proposal: update ring weights, rebind, and ship every
        relocated row through the charged migration path."""
        cluster = self.cluster
        _require_elastic_views(cluster, "rebalance")
        if cluster._undo_logs:
            raise RuntimeError("rebalance cannot run inside an open transaction scope")
        membership = cluster.membership
        default = self._consistent_vnodes()
        if default is None:
            raise RuntimeError("no consistent-hash object to rebalance")
        weights = membership.weights
        hot_weight = weights.get(proposal.hot_token, default)
        new_hot = max(self.min_weight, hot_weight - proposal.step)
        shifted = hot_weight - new_hot
        if shifted == 0:
            raise RuntimeError(
                f"token {proposal.hot_token} is already at the minimum ring "
                f"weight {self.min_weight}"
            )
        with cluster.obs.span(
            "rebalance", hot=proposal.hot_node, cold=proposal.cold_node,
            skew=round(proposal.skew, 4), step=shifted,
        ):
            cluster._drain_parallel()
            weights[proposal.hot_token] = new_hot
            weights[proposal.cold_token] = (
                weights.get(proposal.cold_token, default) + shifted
            )
            report = RebalanceReport(proposal=proposal, epoch=membership.epoch + 1)
            identity = {i: i for i in range(cluster.num_nodes)}
            survivors = frozenset(identity)
            with _replication_paused(cluster.replicator):
                for name, info in _partitioned_objects(cluster):
                    if not isinstance(
                        info.partitioner, BoundConsistentHash  # type: ignore[attr-defined]
                    ):
                        continue
                    bound = _rebind(
                        cluster, info, cluster.num_nodes, membership.tokens
                    )
                    moves = _plan_moves(
                        cluster, name, bound, identity, survivors, None
                    )
                    info.partitioner = bound  # type: ignore[attr-defined]
                    count = _execute_moves(cluster, name, moves, Tag.MIGRATE)
                    if count:
                        report.moved[name] = count
            if cluster.replicator is not None:
                cluster.replicator.sync(charged=True)
            membership.record(
                "rebalance", proposal.hot_node, proposal.hot_token,
                detail=proposal.describe(),
            )
            cluster.catalog.bump_version()
            if cluster._sanitizer is not None:
                cluster._sanitizer.check("rebalance")
        return report

    def run_once(self) -> Optional[RebalanceReport]:
        """One observe→propose→execute cycle; ``None`` when balanced."""
        proposal = self.propose()
        if proposal is None:
            return None
        return self.execute(proposal)
