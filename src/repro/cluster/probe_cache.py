"""Cross-statement heavy-hitter probe caching for parallel workers.

Abo-Khamis et al.'s heavy-light partitioning (PAPERS.md) motivates treating
*heavy* join keys — the ones probed over and over across statements — as a
separate regime.  PR 2's probe memo already collapses repeats *within* one
statement; this cache carries the heavy keys *across* statements: once a
key's probe frequency at a worker crosses ``threshold``, its fetched
partner rows (or GI entry groups) stay resident in that worker until a
write invalidates them.

Charging contract (the equivalence suite asserts it): a cache hit charges
**exactly what the probe would have cost** — one SEARCH, plus one FETCH per
match for non-clustered indexes, via the node's ``charge_*`` helpers — so
ledger cells stay bit-identical to both the serial batched engine and the
per-tuple reference engine.  The cache saves interpreter work (index search,
row fetch, dict grouping), never modeled I/Os.

Invalidation:

* **write-sets** — every mutating superstep command a worker executes calls
  :meth:`note_write` / :meth:`note_gi_write` before applying, dropping
  exactly the cached keys the write touches (the write-set rides in the
  superstep envelope itself: workers only ever mutate their own shard, and
  every such mutation arrives as an envelope command);
* **catalog epoch** — every superstep envelope carries the coordinator's
  catalog version; a bump (DDL) clears the cache wholesale.  DDL also
  drains the worker pool, so this is defense in depth.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..storage.schema import Row

#: (node_id, fragment_name, column, key)
_IndexSlot = Tuple[int, str, str, object]
#: (node_id, gi_name, key)
_GISlot = Tuple[int, str, object]


class HeavyHitterProbeCache:
    """Per-worker cache of hot-key probe results with precise invalidation."""

    __slots__ = (
        "threshold",
        "max_entries",
        "epoch",
        "_freq",
        "_index_rows",
        "_index_positions",
        "_gi_groups",
        "_fetch_rows",
        "_fetch_slots",
        "hits",
        "misses",
        "invalidations",
        "flushed_hits",
        "flushed_misses",
        "flushed_invalidations",
        "epoch_flushes",
    )

    def __init__(self, threshold: int = 3, max_entries: int = 4096) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.max_entries = max_entries
        self.epoch: Optional[int] = None
        #: probe frequency per slot (index and GI slots share the counter map)
        self._freq: Dict[object, int] = {}
        #: cached index-probe matches per slot
        self._index_rows: Dict[_IndexSlot, List[Row]] = {}
        #: (node, fragment) -> {column: key position}; which columns of a
        #: fragment have live cached entries, for exact write invalidation
        self._index_positions: Dict[Tuple[int, str], Dict[str, int]] = {}
        #: cached GI probe results per slot (owner -> grids, insertion order)
        self._gi_groups: Dict[_GISlot, Dict[int, list]] = {}
        #: cached landing-node fetches: (node, relation, rowids) -> rows
        self._fetch_rows: Dict[Tuple[int, str, Tuple[int, ...]], List[Row]] = {}
        #: (node, relation) -> resident fetch slots of that fragment, so a
        #: write invalidates them with one dict pop instead of a scan
        self._fetch_slots: Dict[Tuple[int, str], set] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: Counter totals folded away by catalog-epoch clears.  Without
        #: these, the hit/miss/invalidation history of an epoch would vanish
        #: with the entries it described; :meth:`stats` always reports
        #: all-time totals (live + flushed).
        self.flushed_hits = 0
        self.flushed_misses = 0
        self.flushed_invalidations = 0
        self.epoch_flushes = 0

    # ------------------------------------------------------------- epochs

    def check_epoch(self, catalog_version: int) -> None:
        """Clear everything when the coordinator's catalog version moved.

        The live hit/miss/invalidation counters are flushed into the
        ``flushed_*`` accumulators first, so epoch clears never lose
        statistics — they ride back to the coordinator in the next stats
        reply and surface in the metrics export.
        """
        if self.epoch != catalog_version:
            if self.epoch is not None:
                self.flush_counters()
            self.clear()
            self.epoch = catalog_version

    def flush_counters(self) -> None:
        """Fold the live counters into the flushed accumulators."""
        self.flushed_hits += self.hits
        self.flushed_misses += self.misses
        self.flushed_invalidations += self.invalidations
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.epoch_flushes += 1

    def clear(self) -> None:
        self._freq.clear()
        self._index_rows.clear()
        self._index_positions.clear()
        self._gi_groups.clear()
        self._fetch_rows.clear()
        self._fetch_slots.clear()

    # ------------------------------------------------------- index probes

    def lookup_index(
        self, node_id: int, fragment: str, column: str, key: object
    ) -> Optional[List[Row]]:
        slot = (node_id, fragment, column, key)
        rows = self._index_rows.get(slot)
        if rows is not None:
            self.hits += 1
        return rows

    def note_index_miss(
        self,
        node_id: int,
        fragment: str,
        column: str,
        key: object,
        key_position: int,
        rows: List[Row],
    ) -> None:
        """Record a live probe; promote the key to resident once hot."""
        self.misses += 1
        slot = (node_id, fragment, column, key)
        count = self._freq.get(slot, 0) + 1
        self._freq[slot] = count
        if count >= self.threshold and len(self._index_rows) < self.max_entries:
            self._index_rows[slot] = rows
            self._index_positions.setdefault((node_id, fragment), {})[
                column
            ] = key_position

    # ---------------------------------------------------------- GI probes

    def lookup_gi(self, node_id: int, gi_name: str, key: object):
        slot = (node_id, gi_name, key)
        grouped = self._gi_groups.get(slot)
        if grouped is not None:
            self.hits += 1
        return grouped

    def note_gi_miss(
        self, node_id: int, gi_name: str, key: object, grouped: Dict[int, list]
    ) -> None:
        self.misses += 1
        slot = (node_id, gi_name, key)
        count = self._freq.get(slot, 0) + 1
        self._freq[slot] = count
        if count >= self.threshold and len(self._gi_groups) < self.max_entries:
            self._gi_groups[slot] = grouped

    # ------------------------------------------------------------ fetches

    def lookup_fetch(
        self, node_id: int, relation: str, rowids: Tuple[int, ...]
    ) -> Optional[List[Row]]:
        rows = self._fetch_rows.get((node_id, relation, rowids))
        if rows is not None:
            self.hits += 1
        return rows

    def note_fetch_miss(
        self, node_id: int, relation: str, rowids: Tuple[int, ...], rows: List[Row]
    ) -> None:
        self.misses += 1
        slot = (node_id, relation, rowids)
        count = self._freq.get(slot, 0) + 1
        self._freq[slot] = count
        if count >= self.threshold and len(self._fetch_rows) < self.max_entries:
            self._fetch_rows[slot] = rows
            self._fetch_slots.setdefault((node_id, relation), set()).add(slot)

    # ------------------------------------------------------- invalidation

    def has_resident_rows(self) -> bool:
        """Whether any cached entry could need row-level invalidation.

        When this is ``False`` every :meth:`note_write` call is a no-op
        (nothing resident to drop, and frequency counters are untouched by
        writes to unpromoted fragments), so hot insert loops may skip the
        per-row calls wholesale.  Behaviour-identical, purely a fast path.
        """
        return bool(self._index_positions or self._fetch_rows)

    def note_write(self, node_id: int, fragment: str, row: Row) -> None:
        """A row of ``fragment`` at ``node_id`` is being inserted/deleted:
        drop exactly the cached probe keys whose match set this row is (or
        would now be) part of, plus any landing-fetch batches of that
        fragment (their rowid lists may now dangle)."""
        positions = self._index_positions.get((node_id, fragment))
        if positions:
            for column, position in positions.items():
                slot = (node_id, fragment, column, row[position])
                if self._index_rows.pop(slot, None) is not None:
                    self.invalidations += 1
                self._freq.pop(slot, None)
        stale = self._fetch_slots.pop((node_id, fragment), None)
        if stale:
            for slot in stale:
                del self._fetch_rows[slot]
                self._freq.pop(slot, None)
                self.invalidations += 1

    def note_gi_write(self, node_id: int, gi_name: str, key: object) -> None:
        """A GI entry under ``key`` changed at ``node_id``: drop that key."""
        slot = (node_id, gi_name, key)
        if self._gi_groups.pop(slot, None) is not None:
            self.invalidations += 1
        self._freq.pop(slot, None)

    # -------------------------------------------------------------- stats

    def stats(self) -> Dict[str, int]:
        """All-time counters (live + epoch-flushed) and resident entry counts."""
        return {
            "hits": self.hits + self.flushed_hits,
            "misses": self.misses + self.flushed_misses,
            "invalidations": self.invalidations + self.flushed_invalidations,
            "flushed_hits": self.flushed_hits,
            "flushed_misses": self.flushed_misses,
            "flushed_invalidations": self.flushed_invalidations,
            "epoch_flushes": self.epoch_flushes,
            "resident_index_keys": len(self._index_rows),
            "resident_gi_keys": len(self._gi_groups),
            "resident_fetch_batches": len(self._fetch_rows),
        }

    def heavy_hitters(self) -> List[Tuple[str, int, str, str, int]]:
        """Resident hot keys as ``(kind, node, structure, key_repr,
        matches)`` tuples in deterministic sorted order — the raw material
        of the bench's skew-diagnosis report."""
        out: List[Tuple[str, int, str, str, int]] = []
        for (node_id, fragment, column, key), rows in self._index_rows.items():
            out.append(
                ("index", node_id, f"{fragment}.{column}", repr(key), len(rows))
            )
        for (node_id, gi_name, key), grouped in self._gi_groups.items():
            out.append(
                (
                    "gi", node_id, gi_name, repr(key),
                    sum(len(grids) for grids in grouped.values()),
                )
            )
        for (node_id, relation, rowids), rows in self._fetch_rows.items():
            out.append(
                ("fetch", node_id, relation, f"{len(rowids)} rowids", len(rows))
            )
        out.sort()
        return out
