"""The cluster catalog: what exists, where it is partitioned, what serves what.

The catalog records base relations, auxiliary relations (with their
projection/selection trimming), global indexes, and join views, plus the
reverse maps the update path needs: given an updated base relation, which
auxiliary structures must be co-updated and which view maintainers must run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..storage.schema import Row, Schema
from .partitioning import BoundPartitioner, BoundRoundRobin, PartitioningSpec


@dataclass
class RelationInfo:
    """A base relation: schema, placement, and declared local indexes."""

    schema: Schema
    spec: PartitioningSpec
    partitioner: BoundPartitioner | BoundRoundRobin
    indexes: Dict[str, bool] = field(default_factory=dict)  # column -> clustered
    row_count: int = 0

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def partition_column(self) -> Optional[str]:
        return getattr(self.partitioner, "column", None)

    def is_partitioned_on(self, column: str) -> bool:
        return self.partition_column == column


@dataclass
class AuxiliaryRelationInfo:
    """An auxiliary relation: AR_R = partition(select(project(R))).

    ``columns`` is the projection kept (None = all of R's columns) and
    ``predicate`` the optional selection; both implement the storage-overhead
    minimization of paper §2.1.2.  The AR is hash-partitioned on ``column``
    (a join attribute of R) and clustered on it, mirroring Teradata's
    automatic clustered index on the partitioning attribute.
    """

    name: str
    base: str
    column: str
    schema: Schema
    partitioner: BoundPartitioner
    columns: Optional[Tuple[str, ...]] = None
    predicate: Optional[Callable[[Row], bool]] = None
    serves_views: List[str] = field(default_factory=list)
    project: Callable[[Row], Row] = field(default=lambda row: row)

    def image_of(self, base_row: Row) -> Optional[Row]:
        """The AR row a base row maps to, or None if the selection drops it."""
        if self.predicate is not None and not self.predicate(base_row):
            return None
        return self.project(base_row)


@dataclass
class GlobalIndexInfo:
    """A global index GI_R on R.c, hash-partitioned on c."""

    name: str
    base: str
    column: str
    distributed_clustered: bool
    key_position: int
    num_nodes: int
    serves_views: List[str] = field(default_factory=list)

    def home_node(self, key: object) -> int:
        from .partitioning import stable_hash

        return stable_hash(key) % self.num_nodes


@dataclass
class ViewInfo:
    """A registered materialized join view and its maintainer."""

    name: str
    definition: object  # core.view.JoinViewDefinition; kept loose to avoid a cycle
    schema: Schema
    partitioner: BoundPartitioner | BoundRoundRobin
    maintainer: object  # core.maintenance.ViewMaintainer
    method: str = ""
    row_count: int = 0


class Catalog:
    """All metadata for one cluster, with reverse maps for the update path."""

    def __init__(self) -> None:
        self.relations: Dict[str, RelationInfo] = {}
        self.auxiliaries: Dict[str, AuxiliaryRelationInfo] = {}
        self.global_indexes: Dict[str, GlobalIndexInfo] = {}
        self.views: Dict[str, ViewInfo] = {}
        self._aux_of_base: Dict[str, List[str]] = {}
        self._gi_of_base: Dict[str, List[str]] = {}
        self._views_on_base: Dict[str, List[str]] = {}
        #: Monotone counter bumped on every DDL-level change (objects or
        #: indexes added/removed).  Compiled maintenance plans, output
        #: mappers, and filter tables are cached keyed on this version, so
        #: any catalog change invalidates them without explicit wiring.
        self.version: int = 0

    def bump_version(self) -> None:
        """Invalidate every version-keyed cache (compiled plans etc.)."""
        self.version += 1

    # ----------------------------------------------------------- register

    def ensure_name_free(self, name: str) -> None:
        """Public pre-check so DDL can fail before creating any storage."""
        self._require_fresh(name)

    def _require_fresh(self, name: str) -> None:
        taken = (
            name in self.relations
            or name in self.auxiliaries
            or name in self.global_indexes
            or name in self.views
        )
        if taken:
            raise ValueError(f"catalog name {name!r} is already in use")

    def add_relation(self, info: RelationInfo) -> None:
        self._require_fresh(info.name)
        self.relations[info.name] = info
        self.bump_version()

    def add_auxiliary(self, info: AuxiliaryRelationInfo) -> None:
        self._require_fresh(info.name)
        if info.base not in self.relations:
            raise KeyError(f"auxiliary {info.name!r}: unknown base {info.base!r}")
        self.auxiliaries[info.name] = info
        self._aux_of_base.setdefault(info.base, []).append(info.name)
        self.bump_version()

    def add_global_index(self, info: GlobalIndexInfo) -> None:
        self._require_fresh(info.name)
        if info.base not in self.relations:
            raise KeyError(f"global index {info.name!r}: unknown base {info.base!r}")
        self.global_indexes[info.name] = info
        self._gi_of_base.setdefault(info.base, []).append(info.name)
        self.bump_version()

    def add_view(self, info: ViewInfo, base_relations: List[str]) -> None:
        self._require_fresh(info.name)
        for base in base_relations:
            if base not in self.relations:
                raise KeyError(f"view {info.name!r}: unknown base {base!r}")
        self.views[info.name] = info
        for base in base_relations:
            self._views_on_base.setdefault(base, []).append(info.name)
        self.bump_version()

    # --------------------------------------------------------------- drop

    def remove_view(self, name: str) -> ViewInfo:
        info = self.view(name)
        del self.views[name]
        for views in self._views_on_base.values():
            if name in views:
                views.remove(name)
        for aux in self.auxiliaries.values():
            if name in aux.serves_views:
                aux.serves_views.remove(name)
        for gi in self.global_indexes.values():
            if name in gi.serves_views:
                gi.serves_views.remove(name)
        self.bump_version()
        return info

    def remove_auxiliary(self, name: str, force: bool = False) -> AuxiliaryRelationInfo:
        info = self.auxiliary(name)
        if info.serves_views and not force:
            raise ValueError(
                f"auxiliary relation {name!r} still serves views "
                f"{info.serves_views}; drop them first or pass force=True"
            )
        del self.auxiliaries[name]
        self._aux_of_base[info.base].remove(name)
        self.bump_version()
        return info

    def remove_global_index(self, name: str, force: bool = False) -> GlobalIndexInfo:
        info = self.global_index(name)
        if info.serves_views and not force:
            raise ValueError(
                f"global index {name!r} still serves views "
                f"{info.serves_views}; drop them first or pass force=True"
            )
        del self.global_indexes[name]
        self._gi_of_base[info.base].remove(name)
        self.bump_version()
        return info

    # ------------------------------------------------------------- lookup

    def relation(self, name: str) -> RelationInfo:
        try:
            return self.relations[name]
        except KeyError:
            raise KeyError(f"unknown relation {name!r}") from None

    def auxiliary(self, name: str) -> AuxiliaryRelationInfo:
        try:
            return self.auxiliaries[name]
        except KeyError:
            raise KeyError(f"unknown auxiliary relation {name!r}") from None

    def global_index(self, name: str) -> GlobalIndexInfo:
        try:
            return self.global_indexes[name]
        except KeyError:
            raise KeyError(f"unknown global index {name!r}") from None

    def view(self, name: str) -> ViewInfo:
        try:
            return self.views[name]
        except KeyError:
            raise KeyError(f"unknown view {name!r}") from None

    def auxiliaries_of(self, base: str) -> List[AuxiliaryRelationInfo]:
        return [self.auxiliaries[n] for n in self._aux_of_base.get(base, [])]

    def global_indexes_of(self, base: str) -> List[GlobalIndexInfo]:
        return [self.global_indexes[n] for n in self._gi_of_base.get(base, [])]

    def views_on(self, base: str) -> List[ViewInfo]:
        return [self.views[n] for n in self._views_on_base.get(base, [])]

    def find_auxiliary(self, base: str, column: str) -> Optional[AuxiliaryRelationInfo]:
        """An existing AR of ``base`` partitioned on ``column``, if any."""
        for info in self.auxiliaries_of(base):
            if info.column == column:
                return info
        return None

    def find_global_index(self, base: str, column: str) -> Optional[GlobalIndexInfo]:
        for info in self.global_indexes_of(base):
            if info.column == column:
                return info
        return None
