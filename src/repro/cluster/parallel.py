"""True shared-nothing execution: a fork-based **read-server** worker pool.

The simulation's L nodes are shared-nothing *in the model* but, before this
module, were executed serially on one core.  :class:`ParallelEngine` forks W
worker processes from the coordinator's image and runs the read side of
statement execution on them.  The data plane is deliberately asymmetric:

* **Mutations never cross the wire.**  The coordinator applies every base
  write, AR/GI co-update, and view-delta write through the serial bulk
  paths — charging the real ledger and the real network exactly like the
  serial engine — and appends each physical mutation to a
  :class:`RefreshJournal` of columnar :class:`~repro.core.delta.DeltaBlock`
  runs, one per ``(node, structure)``.
* **Workers are pure read servers.**  The engine ships only the read ops of
  a maintenance hop (``probe`` / ``gi_probe`` / ``fetch`` / ``merge`` —
  :data:`WIRE_KINDS`); each worker bills node-local read work to a private
  :class:`~repro.costs.CostLedger` whose cell delta rides back on the reply,
  and the coordinator folds the deltas in deterministic ``(node, op, tag)``
  order.  One envelope per worker per superstep, and the typical statement
  has exactly **one** read superstep — base writes and view writes no longer
  cost a barrier each, so the per-statement barrier count drops from 3 to 1.
* **Refresh is lazy and piggybacked.**  Journal writes accumulate across
  statements (cross-statement command accumulation); a worker receives the
  pending blocks for a structure in the *same* envelope as its first read
  of that structure after the write (pipelined flush), and applies them
  uncharged before executing its reads — so every read observes exactly the
  global statement order, at any worker count.  Structures nobody reads
  (view fragments above all) are never journaled and never shipped.
* **Routing is slot-sticky and skew-aware.**  Each read op carries a cache
  slot identity (the same key its heavy-hitter probe-cache entry uses); the
  first time a slot appears it is assigned to the least-loaded worker
  (deterministic lowest-id tie-break) and stays there for the pool
  generation, so a slot's hit/miss history lives in exactly one cache and
  merged event tallies stay bit-identical across worker counts.  Load is
  tracked per worker from deterministic observed match counts, which is
  what spreads a skewed key population evenly (``worker_skew`` → 1).

The wire format is length-framed pickle protocol 5: one ``send_bytes`` blob
per envelope, with the blocks' ``array`` columns carried as out-of-band
buffers (zero-copy ``pickle.loads`` on the receive side), and an optional
shared-memory path for blobs over :attr:`ParallelEngine.shm_min_bytes`.

Routing never changes charges: every modeled cost keys on the *node* named
in the op, not on the worker that executes it, and cache hits charge
exactly the probe cost they avoid — so ledgers are bit-identical to serial
for every worker count (``tests/test_parallel_equivalence.py``).

Ledger cells are commutative sums of integer counts, so the merge order
cannot change the float result — the deterministic order is still enforced
so equivalence failures reproduce byte-for-byte.

``workers=1`` runs the read ops inline against the coordinator's nodes (no
fork, no IPC); the refresh journal then only drives probe-cache
invalidation, since the inline "shard" *is* the always-current image.

DDL, transactions, fault attachment, replication, and aggregate-view
maintenance all drain the pool and run on the serial reference path; the
membership/rebalance planners keep speaking the full stringly-typed op
vocabulary (:data:`COMMAND_KINDS`) through :func:`run_ops_serial`, which
always executes with the pool drained.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import struct
import time
import traceback
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..core.delta import OP_DELETE, OP_INSERT, DeltaBlock
from ..costs import CostLedger, Op
from ..storage.global_index import GlobalRowId
from .node import _any_index
from .probe_cache import HeavyHitterProbeCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..costs import Tag
    from ..storage import IndexedHeap, Row
    from .cluster import Cluster


#: Every envelope command kind a worker can execute.  This frozenset is the
#: single source of truth for the op vocabulary: ``_execute_op`` must handle
#: exactly these kinds, coordinators may only construct these kinds, and the
#: REP005 static rule plus the runtime sanitizer both validate against it.
COMMAND_KINDS = frozenset(
    {
        "probe", "ins", "del", "gi_probe", "fetch",
        "gi_ins", "gi_del", "merge", "rr_del", "charge",
        "migrate", "handoff", "replica_apply",
    }
)

#: Kinds that never mutate shards; mutations in the vocabulary exist for the
#: membership/rebalance planners, which execute them through
#: :func:`run_ops_serial` with the pool drained.
READ_ONLY_KINDS = frozenset({"probe", "gi_probe", "fetch", "merge", "charge"})

#: The kinds whose execution mutates node state (serial planner path only).
MUTATING_KINDS = COMMAND_KINDS - READ_ONLY_KINDS

#: The only kinds :meth:`ParallelEngine.run_ops` ships to workers: reads
#: with a per-node modeled cost.  (``charge`` is read-only but carries no
#: data dependency, so the coordinator bills it directly when it needs to.)
WIRE_KINDS = frozenset({"probe", "gi_probe", "fetch", "merge"})

#: Refresh-block kinds of the transaction-batched wire format:
#: ``_apply_block`` must handle exactly these, and every
#: :class:`~repro.core.delta.DeltaBlock` construction site must use one.
BLOCK_KINDS = frozenset({"frag_delta", "gi_delta"})


def validate_op(op: tuple) -> None:
    """Sanitizer hook: reject malformed envelope commands before dispatch."""
    if not isinstance(op, tuple) or not op:
        raise AssertionError(f"sanitize: envelope op must be a non-empty tuple, got {op!r}")
    if op[0] not in COMMAND_KINDS:
        raise AssertionError(
            f"sanitize: unknown envelope op kind {op[0]!r}; "
            f"known kinds: {sorted(COMMAND_KINDS)}"
        )


def validate_block(block: "DeltaBlock") -> None:
    """Sanitizer hook: reject malformed refresh blocks before shipping."""
    if not isinstance(block, DeltaBlock):
        raise AssertionError(
            f"sanitize: refresh payload must be a DeltaBlock, got {block!r}"
        )
    if block.kind not in BLOCK_KINDS:
        raise AssertionError(
            f"sanitize: unknown refresh block kind {block.kind!r}; "
            f"known kinds: {sorted(BLOCK_KINDS)}"
        )
    if not (
        len(block.ops) == len(block.tags) == len(block.rowids)
        == len(block.refs) == len(block.keys)
    ):
        raise AssertionError(
            f"sanitize: ragged DeltaBlock columns for {block.name!r}"
        )


def fork_available() -> bool:
    """Whether this platform supports the fork start method (POSIX)."""
    return "fork" in multiprocessing.get_all_start_methods()


def shard_ranges(num_nodes: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` node ranges, one per worker, sizes within 1.

    The read-server pool no longer binds workers to node shards (any worker
    serves any node), but the range partition remains the deterministic
    node↔worker attribution used by the rebalancer's busy-time tiebreak.
    """
    workers = max(1, min(workers, num_nodes))
    base, extra = divmod(num_nodes, workers)
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for index in range(workers):
        hi = lo + base + (1 if index < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def locate_victim(fragment: "IndexedHeap", row: "Row", taken) -> Optional[int]:
    """The rowid :meth:`Node.delete_matching` would delete for ``row``,
    excluding rowids already claimed by earlier deletes of this statement
    (the serial engine mutates between searches; the exclusion set models
    exactly that).  Returns ``None`` when no live copy remains."""
    index = _any_index(fragment)
    if index is not None:
        for rowid in index.search(index.key_of(row)):
            if rowid not in taken and fragment.table.fetch(rowid) == row:
                return rowid
        return None
    for rowid, stored in fragment.table.scan():
        if rowid not in taken and stored == row:
            return rowid
    return None


# ========================================================== wire framing

#: Envelope frame: ``<u32 buffer-count> <u64 payload-len> <u64 size>*N``
#: followed by the pickle-5 payload and the N out-of-band buffers,
#: concatenated into one ``send_bytes`` blob (one syscall, one length
#: prefix on the pipe).  ``_decode`` reconstructs with ``pickle.loads(...,
#: buffers=...)`` over memoryview slices — zero-copy on the receive side.
_FRAME_HEAD = struct.Struct("<I")
_FRAME_SIZE = struct.Struct("<Q")


def _encode(message: object) -> bytes:
    buffers: List[pickle.PickleBuffer] = []
    payload = pickle.dumps(message, protocol=5, buffer_callback=buffers.append)
    raws = [buffer.raw() for buffer in buffers]
    parts: List[bytes] = [
        _FRAME_HEAD.pack(len(raws)),
        _FRAME_SIZE.pack(len(payload)),
    ]
    parts.extend(_FRAME_SIZE.pack(raw.nbytes) for raw in raws)
    parts.append(payload)
    parts.extend(raws)  # type: ignore[arg-type]  # join accepts buffers
    return b"".join(parts)


def _decode(blob) -> object:
    view = memoryview(blob)
    (count,) = _FRAME_HEAD.unpack_from(view, 0)
    offset = _FRAME_HEAD.size
    (payload_len,) = _FRAME_SIZE.unpack_from(view, offset)
    offset += _FRAME_SIZE.size
    sizes: List[int] = []
    for _ in range(count):
        (size,) = _FRAME_SIZE.unpack_from(view, offset)
        offset += _FRAME_SIZE.size
        sizes.append(size)
    payload = view[offset:offset + payload_len]
    offset += payload_len
    buffers: List[memoryview] = []
    for size in sizes:
        buffers.append(view[offset:offset + size])
        offset += size
    return pickle.loads(payload, buffers=buffers)


def _shm_create(blob: bytes):
    """Copy ``blob`` into a fresh shared-memory segment (or ``None`` when
    the platform refuses).  The caller owns the unlink."""
    try:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=len(blob))
    except (ImportError, OSError):  # pragma: no cover - platform dependent
        return None
    segment.buf[: len(blob)] = blob
    return segment


def _shm_read(name: str, size: int) -> object:
    """Decode an envelope parked in a shared-memory segment by name."""
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # pragma: no cover - Python < 3.13 has no track=
        segment = shared_memory.SharedMemory(name=name)
        try:  # the attach side must not double-unlink at interpreter exit
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
    try:
        return _decode(segment.buf[:size])
    finally:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - exported views on error paths
            pass


# ============================================================ worker side


def _note_event(events, node_id: int, kind: str, detail: str = "") -> None:
    """Tally one compact worker event record.

    Keys are ``(node_id, kind, detail)`` — **node**-scoped, never
    worker-scoped — and every cache slot's reads are sticky-routed to one
    worker, so the aggregated tally of a statement is identical for any
    worker count.  The coordinator merges tallies in sorted key order,
    making traces bit-stable.
    """
    slot = (node_id, kind, detail)
    events[slot] = events.get(slot, 0) + 1


def _execute_op(nodes, cache: Optional[HeavyHitterProbeCache], op, events=None):
    """Run one envelope command against the local node image.

    Charges go to the executing side's ledger through the normal
    :class:`~repro.cluster.node.Node` methods — a worker's private ledger
    on the pool path, the real ledger on the :func:`run_ops_serial` planner
    path — so execution bills exactly what the serial engine would for the
    same command.  Probe-cache hits charge through the ``charge_*`` helpers:
    the modeled cost of the probe they avoided re-executing.

    ``events`` (a dict, present only on traced supersteps) accumulates
    compact ``(node, kind, detail)`` tallies via :func:`_note_event`; the
    fast path pays one ``is not None`` test per command when untraced.
    """
    kind = op[0]
    if kind == "probe":
        _, node_id, fragment, column, key, tag = op
        node = nodes[node_id]
        if cache is not None:
            rows = cache.lookup_index(node_id, fragment, column, key)
            if rows is not None:
                if events is not None:
                    _note_event(events, node_id, "probe", "hit")
                node.charge_index_probe(fragment, column, len(rows), tag, times=1)
                return rows
        if events is not None:
            _note_event(
                events, node_id, "probe", "miss" if cache is not None else ""
            )
        rows = node.index_probe(fragment, column, key, tag)
        if cache is not None:
            position = node.fragment(fragment).table.schema.index_of(column)
            cache.note_index_miss(node_id, fragment, column, key, position, rows)
        return rows
    if kind == "ins":
        _, node_id, name, rows, tag = op
        if events is not None:
            _note_event(events, node_id, "ins")
        if cache is not None and cache.has_resident_rows():
            for row in rows:
                cache.note_write(node_id, name, row)
        return nodes[node_id].insert_many(name, list(rows), tag)
    if kind == "del":
        _, node_id, name, row, tag, tolerate = op
        if events is not None:
            _note_event(events, node_id, "del")
        if cache is not None:
            cache.note_write(node_id, name, row)
        try:
            return nodes[node_id].delete_matching(name, row, tag)
        except KeyError:
            if tolerate:
                return None
            raise
    if kind == "gi_probe":
        _, node_id, gi_name, key, tag = op
        node = nodes[node_id]
        if cache is not None:
            grouped = cache.lookup_gi(node_id, gi_name, key)
            if grouped is not None:
                if events is not None:
                    _note_event(events, node_id, "gi_probe", "hit")
                node.charge_gi_probe(gi_name, tag, times=1)
                return grouped
        if events is not None:
            _note_event(
                events, node_id, "gi_probe", "miss" if cache is not None else ""
            )
        grouped = node.gi_probe(gi_name, key, tag)
        if cache is not None:
            cache.note_gi_miss(node_id, gi_name, key, grouped)
        return grouped
    if kind == "fetch":
        _, node_id, relation, rowids, tag, clustered = op
        node = nodes[node_id]
        slot = tuple(rowids)
        if cache is not None:
            rows = cache.lookup_fetch(node_id, relation, slot)
            if rows is not None:
                if events is not None:
                    _note_event(events, node_id, "fetch", "hit")
                units = 1 if clustered else len(rowids)
                node.charge_fetch(relation, units, tag, times=1)
                return rows
        if events is not None:
            _note_event(
                events, node_id, "fetch", "miss" if cache is not None else ""
            )
        rows = node.fetch_by_rowids(
            relation, list(rowids), tag, clustered_on_page=clustered
        )
        if cache is not None:
            cache.note_fetch_miss(node_id, relation, slot, rows)
        return rows
    if kind == "gi_ins":
        _, node_id, gi_name, entries, tag = op
        node = nodes[node_id]
        if events is not None:
            _note_event(events, node_id, "gi_ins")
        if cache is not None:
            for key, _grid in entries:
                cache.note_gi_write(node_id, gi_name, key)
        node.gi_partition(gi_name).insert_many(entries)
        node.ledger.charge(node_id, Op.INSERT, tag, count=len(entries))
        return None
    if kind == "gi_del":
        _, node_id, gi_name, key, grid, tag, tolerate = op
        if events is not None:
            _note_event(events, node_id, "gi_del")
        if cache is not None:
            cache.note_gi_write(node_id, gi_name, key)
        try:
            nodes[node_id].gi_delete(gi_name, key, grid, tag)
            return True
        except KeyError:
            if tolerate:
                return False
            raise
    if kind == "merge":
        _, node_id, fragment, column, is_sorted, keys, tag = op
        if events is not None:
            _note_event(
                events, node_id, "merge", "scan" if is_sorted else "sort"
            )
        node = nodes[node_id]
        pages = node.fragment_pages(fragment)
        if pages:
            if is_sorted:
                node.ledger.charge(node_id, Op.SCAN_PAGE, tag, count=pages)
            else:
                cost = node.layout.sort_cost_pages(pages)
                node.ledger.charge(node_id, Op.SORT_PAGE, tag, count=cost)
        matches: Dict[object, list] = {}
        if keys:
            position = node.fragment(fragment).table.schema.index_of(column)
            wanted = set(keys)
            for row in node.scan(fragment):
                key = row[position]
                if key in wanted:
                    matches.setdefault(key, []).append(row)
        return matches
    if kind == "rr_del":
        _, node_id, name, rowid, tag = op
        node = nodes[node_id]
        if events is not None:
            _note_event(events, node_id, "rr_del")
        if cache is not None:
            cache.note_write(node_id, name, node.fragment(name).table.fetch(rowid))
        node.ledger.charge(node_id, Op.SEARCH, tag)
        node.delete_by_rowid(name, rowid, tag)
        return None
    if kind == "charge":
        _, node_id, cost_op, tag, count = op
        if events is not None:
            _note_event(events, node_id, "charge", cost_op.value)
        nodes[node_id].ledger.charge(node_id, cost_op, tag, count=count)
        return None
    if kind == "migrate":
        # Topology-change arrival: rows land in the destination fragment,
        # billed like any insert (their SENDs are charged by the planner).
        _, node_id, name, rows, tag = op
        if events is not None:
            _note_event(events, node_id, "migrate")
        if cache is not None and cache.has_resident_rows():
            for row in rows:
                cache.note_write(node_id, name, row)
        return nodes[node_id].insert_many(name, list(rows), tag)
    if kind == "handoff":
        # Topology-change departure: the planner already located the rowids,
        # so no SEARCH — just the physical removal, one write I/O per row.
        _, node_id, name, rowids, tag = op
        node = nodes[node_id]
        if events is not None:
            _note_event(events, node_id, "handoff")
        for rowid in rowids:
            if cache is not None:
                cache.note_write(node_id, name, node.fragment(name).table.fetch(rowid))
            node.delete_by_rowid(name, rowid, tag)
        return None
    if kind == "replica_apply":
        _, node_id, owner, name, action, rows, tag = op
        if events is not None:
            _note_event(events, node_id, "replica_apply", action)
        nodes[node_id].replica_apply(owner, name, action, list(rows), tag)
        return None
    raise ValueError(f"unknown parallel op {kind!r}")


def run_ops_serial(cluster: "Cluster", ops: Sequence[tuple]) -> List[object]:
    """Execute envelope ops directly against the coordinator image.

    The membership/rebalance planners speak the same stringly-typed op
    vocabulary as the parallel engine but always run with the pool drained
    (a topology change reshapes every fragment), so their envelopes execute
    in-process: nodes bill the real ledger and mutations land on the real
    image.  This is the only path on which :data:`MUTATING_KINDS` execute.
    """
    if cluster.sanitize:
        for op in ops:
            validate_op(op)
    nodes = cluster.nodes
    return [_execute_op(nodes, None, op) for op in ops]


def _apply_block(
    nodes,
    cache: Optional[HeavyHitterProbeCache],
    block: "DeltaBlock",
    data: bool = True,
) -> None:
    """Apply one refresh block to the local node image, in entry order.

    Uncharged: the coordinator already billed every mutation through the
    serial bulk paths — refresh is pure replication, not modeled work.
    Probe-cache invalidation mirrors ``_execute_op``'s write kinds exactly
    (insert invalidation gated on resident rows, delete invalidation
    unconditional), so a slot's hit/miss history is identical to the serial
    engines'.  ``data=False`` (the ``workers=1`` inline shard, whose image
    *is* the coordinator's) performs only the cache invalidation.

    Inserts apply through ``insert_many`` in journaled run order, and the
    rowids the fragment assigns are asserted against the coordinator's —
    any divergence means the images forked.
    """
    kind = block.kind
    node = nodes[block.node]
    name = block.name
    if kind == "frag_delta":
        fragment = node.fragment(name) if data else None
        node_id = block.node
        resident = cache is not None and cache.has_resident_rows()
        batch: List["Row"] = []
        expected: List[int] = []

        def flush() -> None:
            if not batch:
                return
            rowids = fragment.insert_many(batch)
            if list(rowids) != expected:  # pragma: no cover - invariant guard
                raise RuntimeError(
                    f"refresh rowid divergence on {name!r} at node {node_id}"
                )
            batch.clear()
            expected.clear()

        for entry_op, rowid, row, _tag, _ref in block.entries():
            if entry_op == OP_INSERT:
                if resident:
                    cache.note_write(node_id, name, row)
                if data:
                    batch.append(row)
                    expected.append(rowid)
            else:
                if data:
                    flush()
                    fragment.delete(rowid)
                if cache is not None:
                    cache.note_write(node_id, name, row)
        if data:
            flush()
        return
    if kind == "gi_delta":
        partition = node.gi_partition(name) if data else None
        node_id = block.node
        for entry_op, rowid, key, _tag, ref in block.entries():
            if cache is not None:
                cache.note_gi_write(node_id, name, key)
            if not data:
                continue
            if entry_op == OP_INSERT:
                partition.insert(key, GlobalRowId(ref, rowid))
            else:
                partition.delete(key, GlobalRowId(ref, rowid))
        return
    raise ValueError(f"unknown refresh block kind {kind!r}")


def _reads_of(op: tuple) -> Tuple[str, int, str]:
    """The journal target ``(block kind, node, structure)`` a wire op reads.

    Doubles as the :data:`WIRE_KINDS` gate: anything else in an engine
    envelope is a protocol violation (mutations reach workers only as
    refresh blocks).
    """
    kind = op[0]
    if kind == "gi_probe":
        return ("gi_delta", op[1], op[2])
    if kind in ("probe", "fetch", "merge"):
        return ("frag_delta", op[1], op[2])
    raise ValueError(
        f"engine envelopes carry read ops only ({sorted(WIRE_KINDS)}); "
        f"got {kind!r} — mutations stay on the coordinator and reach "
        "workers as refresh blocks"
    )


class RefreshJournal:
    """Columnar mutation log between the coordinator and the pool.

    One :class:`~repro.core.delta.DeltaBlock` per written ``(node,
    structure)``, appended in coordinator execution order, plus one cursor
    per worker per block.  :meth:`pending` slices each requested block from
    the worker's cursor — the piggybacked refresh payload — and drops a
    block once every worker has consumed it.  The journal lives for one
    pool generation: it is created at :meth:`ParallelEngine.start` (the
    fork point, where every worker's image is current) and discarded at
    drain.

    View fragments are deliberately **never** journaled — no read op ever
    targets them, and their writes dominate a maintenance statement's data
    volume — which is most of this wire format's bandwidth win.
    """

    __slots__ = ("workers", "_logs", "_cursors")

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self._logs: Dict[Tuple[str, int, str], DeltaBlock] = {}
        self._cursors: Dict[Tuple[str, int, str], List[int]] = {}

    def _log(self, kind: str, node: int, name: str) -> DeltaBlock:
        target = (kind, node, name)
        log = self._logs.get(target)
        if log is None:
            log = self._logs[target] = DeltaBlock(kind, node, name)
            self._cursors[target] = [0] * self.workers
        return log

    # ------------------------------------------------------------- writers

    def log_insert(self, node: int, name: str, rowid: int, row, tag: "Tag") -> None:
        self._log("frag_delta", node, name).add(OP_INSERT, rowid, row, tag)

    def log_insert_run(
        self, node: int, name: str, rowids: Sequence[int], rows: Sequence,
        tag: "Tag",
    ) -> None:
        """Bulk form of :meth:`log_insert` for one fragment's insert batch
        (columns extend at C speed — the journal must stay cheap enough
        that armed-but-unread statements cost ~nothing)."""
        if rowids:
            self._log("frag_delta", node, name).extend(
                OP_INSERT, rowids, rows, tag
            )

    def log_delete(self, node: int, name: str, rowid: int, row, tag: "Tag") -> None:
        self._log("frag_delta", node, name).add(OP_DELETE, rowid, row, tag)

    def log_gi_insert(
        self, node: int, name: str, key, grid: GlobalRowId, tag: "Tag"
    ) -> None:
        self._log("gi_delta", node, name).add(
            OP_INSERT, grid.rowid, key, tag, ref=grid.node
        )

    def log_gi_insert_run(
        self, node: int, name: str, entries: Sequence, tag: "Tag"
    ) -> None:
        """Bulk form of :meth:`log_gi_insert` for one partition's
        ``(key, GlobalRowId)`` entry batch."""
        if entries:
            self._log("gi_delta", node, name).extend(
                OP_INSERT,
                [grid.rowid for _key, grid in entries],
                [key for key, _grid in entries],
                tag,
                refs=[grid.node for _key, grid in entries],
            )

    def log_gi_delete(
        self, node: int, name: str, key, grid: GlobalRowId, tag: "Tag"
    ) -> None:
        self._log("gi_delta", node, name).add(
            OP_DELETE, grid.rowid, key, tag, ref=grid.node
        )

    # ------------------------------------------------------------ consumers

    def pending(
        self, worker_id: int, targets: Sequence[Tuple[str, int, str]]
    ) -> List[DeltaBlock]:
        """The blocks ``worker_id`` must apply before reading ``targets``,
        advancing its cursors.  Fully-consumed logs are dropped."""
        out: List[DeltaBlock] = []
        logs = self._logs
        cursors = self._cursors
        for target in targets:
            log = logs.get(target)
            if log is None:
                continue
            cursor = cursors[target]
            start = cursor[worker_id]
            length = len(log)
            if start >= length:
                continue
            out.append(log if start == 0 else log.tail(start))
            cursor[worker_id] = length
            if min(cursor) >= length:
                del logs[target]
                del cursors[target]
        return out

    @property
    def entries(self) -> int:
        """Total un-dropped journal entries (telemetry only)."""
        return sum(len(log) for log in self._logs.values())


def _worker_main(cluster: "Cluster", conn, threshold: int) -> None:
    """Worker process loop: a read server over a forked copy of the whole
    cluster image, kept current lazily by refresh blocks.

    Reply envelope: ``("ok", results, cells, elapsed_ns, cpu_ns, events)``.
    ``cpu_ns`` (CPU time — immune to scheduler preemption, which matters on
    core-starved runners) feeds the bench's per-worker skew report;
    ``elapsed_ns`` feeds the superstep-duration histogram; ``events``
    carries the compact :func:`_note_event` tallies of a traced superstep
    (empty otherwise).
    """
    # Neutralize the forked copy of the engine so nothing in this process
    # can ever write to the coordinator's pipes (e.g. a stray __del__).
    engine = cluster._parallel_engine
    cluster._parallel_engine = None
    cluster.workers = 0
    if engine is not None:
        engine._disarm()
    ledger = CostLedger(cluster.ledger.params)
    for node in cluster.nodes:
        node.ledger = ledger
    cache = HeavyHitterProbeCache(threshold) if threshold > 0 else None
    nodes = cluster.nodes
    cells = ledger._cells
    while True:
        try:
            blob = conn.recv_bytes()
        except (EOFError, OSError):  # pragma: no cover - parent died
            break
        message = _decode(blob)
        if message[0] == "shm":
            message = _shm_read(message[1], message[2])
        kind = message[0]
        if kind == "stop":
            conn.send_bytes(_encode(("bye",)))  # repro: uncharged-mirror=worker IPC control reply, not a modeled message
            break
        if kind == "stats":
            conn.send_bytes(_encode((  # repro: uncharged-mirror=worker IPC stats reply, not a modeled message
                "ok",
                cache.stats() if cache is not None else {},
                cache.heavy_hitters() if cache is not None else [],
            )))
            continue
        _, catalog_version, blocks, ops, trace = message
        if cache is not None:
            cache.check_epoch(catalog_version)
        cells.clear()
        events = {} if trace else None
        start_ns = time.perf_counter_ns()  # repro: wall-clock=worker busy-time telemetry; never reaches the ledger
        start_cpu = time.process_time_ns()  # repro: wall-clock=worker CPU-time telemetry; never reaches the ledger
        try:
            for block in blocks:
                _apply_block(nodes, cache, block)
            results = [_execute_op(nodes, cache, op, events) for op in ops]
        except BaseException:
            conn.send_bytes(_encode(("err", traceback.format_exc(), {})))  # repro: uncharged-mirror=worker IPC failure reply, not a modeled message
            break
        cpu_ns = time.process_time_ns() - start_cpu  # repro: wall-clock=worker CPU-time telemetry; never reaches the ledger
        elapsed_ns = time.perf_counter_ns() - start_ns  # repro: wall-clock=worker busy-time telemetry; never reaches the ledger
        conn.send_bytes(_encode(  # repro: uncharged-mirror=worker IPC reply envelope; the work it mirrors is already charged
            ("ok", results, dict(cells), elapsed_ns, cpu_ns, events or {})
        ))
    conn.close()


# ======================================================= coordinator side

#: First-touch routing weight per wire kind, before a slot's true match
#: count has been observed (deterministic: derived from the op alone).
_DEFAULT_WEIGHTS = {"probe": 2.0, "gi_probe": 2.0}


class ParallelEngine:
    """Coordinator handle for the read-server worker pool of one cluster.

    ``workers=1`` is special-cased as an **inline shard**: the coordinator
    executes the read ops itself (billing the real ledger directly), the
    heavy-hitter probe cache still applies, and the refresh journal only
    drives cache invalidation.  This keeps the single-worker configuration
    within the engine-overhead budget (op-list construction only) instead
    of paying IPC serialization for no parallelism.
    """

    def __init__(
        self, cluster: "Cluster", workers: int, probe_cache_threshold: int = 3
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.cluster = cluster
        self.workers = workers
        self.probe_cache_threshold = probe_cache_threshold
        self.running = False
        #: poisoned by a worker failure; the cluster then stays serial
        self.broken = False
        #: Read supersteps executed — the statement barrier count.  With
        #: mutations coordinator-side this is 1 per index-nested-loop hop
        #: statement (the GI hop's probe→fetch dependency costs 2).
        self.supersteps = 0
        #: Statements that ran with this engine armed (the denominator of
        #: ``envelopes_per_statement`` / ``barriers_per_transaction``).
        self.statements = 0
        #: Cumulative busy **CPU** nanoseconds per worker slot across the
        #: engine's whole life (survives drain/re-fork cycles).  CPU time,
        #: not wall: on a core-starved runner the wall clock of a worker
        #: includes time spent descheduled, which would drown the skew
        #: signal in scheduler noise.
        self.worker_busy_ns: List[int] = [0] * workers
        #: Envelopes / framed bytes shipped per worker (step envelopes
        #: only; control traffic is not counted).  Telemetry, never costs.
        self.envelopes: List[int] = [0] * workers
        self.ipc_tx_bytes: List[int] = [0] * workers
        self.ipc_rx_bytes: List[int] = [0] * workers
        #: Blobs at or above this many bytes travel via a shared-memory
        #: segment (tiny control frame on the pipe) when the platform
        #: supports it; ``None`` disables the path.
        self.shm_min_bytes: Optional[int] = 256 * 1024
        #: Optional schedule-permutation hooks (duck-typed — anything with
        #: ``permute(kind, key, items) -> items``; see
        #: :mod:`repro.analysis.interleave`).  When set, the four order
        #: decisions of a forked superstep — envelope send order, the
        #: refresh-block list of each envelope, reply drain order, and the
        #: ledger-delta fold order — route through it.  Permutations only
        #: reorder *already-computed* work: routing, op construction, and
        #: every charge are upstream of all four points, so any schedule
        #: must leave ledgers, fragments, and stats bit-identical to the
        #: serial engines.  The interleave detector exists to prove that.
        self.schedule = None
        #: Mutation log of the current pool generation (``None`` when
        #: drained); the cluster's bulk write paths append to it.
        self.journal: Optional[RefreshJournal] = None
        self._owner_pid = os.getpid()
        self._conns: List = []
        self._procs: List = []
        #: Sticky slot→worker routing plus per-worker accumulated weight
        #: and per-slot learned weight (observed match counts) — all reset
        #: each generation, all derived from deterministic values.
        self._slot_worker: Dict[tuple, int] = {}
        self._slot_weight: Dict[tuple, float] = {}
        self._route_load: List[float] = [0.0] * workers
        self._inline_cache: Optional[HeavyHitterProbeCache] = None
        #: Last probe-cache stats observed at :meth:`stop` (worker caches
        #: die with their processes; this keeps their final counters
        #: collectable afterwards).
        self._final_cache_stats: List[Dict[str, int]] = []
        self._final_heavy_hitters: List[list] = []

    @property
    def inline(self) -> bool:
        """Whether this engine runs its single shard in-process."""
        return self.workers == 1

    # ------------------------------------------------------ pool lifecycle

    def start(self) -> None:
        """Fork the pool from the coordinator's current node image."""
        if self.running or self.broken:
            return
        self.journal = RefreshJournal(self.workers)
        self._slot_worker = {}
        self._slot_weight = {}
        self._route_load = [0.0] * self.workers
        if self.inline:
            if self._inline_cache is None and self.probe_cache_threshold > 0:
                self._inline_cache = HeavyHitterProbeCache(
                    self.probe_cache_threshold
                )
            self.running = True
            return
        context = multiprocessing.get_context("fork")
        self._conns = []
        self._procs = []
        for _worker_id in range(self.workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(self.cluster, child_conn, self.probe_cache_threshold),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(process)
        self.running = True

    def stop(self) -> None:
        """Drain the pool.  Free: the coordinator image is authoritative,
        so worker state is simply discarded; a later :meth:`start` re-forks
        from the then-current image.  Worker probe-cache stats are
        snapshotted first so their counters survive the drain."""
        if self.running:
            try:
                self._final_cache_stats = self.probe_cache_stats()
                self._final_heavy_hitters = self.heavy_hitters()
            except (EOFError, OSError):  # pragma: no cover - dying workers
                pass
        self.journal = None
        if self.inline:
            # Discard the inline shard's cache, exactly as a forked
            # worker's cache dies with its process.
            self._inline_cache = None
            self.running = False
            return
        if not self._conns:
            self.running = False
            return
        for conn in self._conns:
            try:
                conn.send_bytes(_encode(("stop",)))  # repro: uncharged-mirror=pool shutdown IPC, not a modeled message
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for conn in self._conns:
            try:
                conn.recv_bytes()
            except (EOFError, OSError):
                pass
            conn.close()
        for process in self._procs:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
        self._conns = []
        self._procs = []
        self.running = False

    def _disarm(self) -> None:
        """Forget all pool handles without touching the pipes (called in
        the forked child on its inherited copy of the engine)."""
        self._conns = []
        self._procs = []
        self.journal = None
        self.running = False

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        if self.running and os.getpid() == self._owner_pid:
            try:
                self.stop()
            except Exception:
                pass

    # ------------------------------------------------------------- routing

    def _route_op(self, op: tuple) -> Tuple[int, tuple]:
        """The worker serving ``op``, plus the cache-slot identity routed.

        Slots are exactly the probe-cache keys, so a slot's promotion and
        hit/miss sequence happens in one cache regardless of worker count.
        First touch goes to the least-loaded worker (lowest id on ties —
        deterministic); the accumulated load uses the slot's last observed
        match count, which is itself deterministic, so the whole placement
        is reproducible run-to-run and never consulted for charging.
        """
        kind = op[0]
        if kind == "probe":
            slot = ("p", op[1], op[2], op[3], op[4])
        elif kind == "gi_probe":
            slot = ("g", op[1], op[2], op[3])
        elif kind == "fetch":
            slot = ("f", op[1], op[2], tuple(op[3]))
        elif kind == "merge":
            slot = ("m", op[1], op[2])
        else:
            _reads_of(op)  # raises: not a wire kind
        worker_id = self._slot_worker.get(slot)
        weight = self._slot_weight.get(slot)
        if weight is None:
            if kind == "fetch":
                weight = 1.0 + len(op[3])
            elif kind == "merge":
                weight = 1.0 + self.cluster.nodes[op[1]].fragment_pages(op[2])
            else:
                weight = _DEFAULT_WEIGHTS[kind]
        if worker_id is None:
            load = self._route_load
            worker_id = min(range(self.workers), key=load.__getitem__)
            self._slot_worker[slot] = worker_id
        self._route_load[worker_id] += weight
        return worker_id, slot

    def _learn_weights(
        self, ops: Sequence[tuple], slots: Sequence[tuple], results: Sequence
    ) -> None:
        """Update per-slot weights from observed match counts (reply data —
        deterministic, so future placements stay reproducible)."""
        weights = self._slot_weight
        for op, slot, result in zip(ops, slots, results):
            kind = op[0]
            if kind in ("probe", "fetch"):
                weights[slot] = 1.0 + len(result)
            elif kind == "gi_probe":
                weights[slot] = 1.0 + sum(len(v) for v in result.values())

    # --------------------------------------------------------- supersteps

    def run_ops(self, ops: Sequence[tuple]) -> List[object]:
        """One read superstep: sticky-route ``ops`` to workers, piggyback
        each worker's pending refresh blocks on its envelope, execute,
        merge ledger deltas deterministically, and return per-op results
        in op order.

        When observability is enabled the superstep runs inside a
        ``superstep`` span tagged only with its ordinal and op count —
        deliberately **not** the worker count, so the span/event signature
        of a statement is identical for any number of workers (the
        determinism tests compare workers∈{1,2} byte-for-byte)."""
        if not ops:
            return []
        if self.cluster.sanitize:
            for op in ops:
                validate_op(op)
        obs = self.cluster.obs
        runner = self._run_inline if self.inline else self._run_forked
        if not obs.enabled:
            return runner(ops, None, None)
        with obs.span("superstep", index=self.supersteps, ops=len(ops)) as span:
            return runner(ops, obs, span)

    def _targets_of(self, ops: Sequence[tuple]) -> List[Tuple[str, int, str]]:
        """Deduplicated journal targets of ``ops``, first-read order."""
        targets: List[Tuple[str, int, str]] = []
        seen = set()
        for op in ops:
            target = _reads_of(op)
            if target not in seen:
                seen.add(target)
                targets.append(target)
        return targets

    def _run_inline(self, ops: Sequence[tuple], obs, span) -> List[object]:
        """Single-shard superstep executed in-process (``workers=1``)."""
        cluster = self.cluster
        cache = self._inline_cache
        if cache is not None:
            cache.check_epoch(cluster.catalog.version)
        nodes = cluster.nodes
        journal = self.journal
        if journal is not None:
            # The inline image is the coordinator's, so the pending refresh
            # carries no new data — but its write set must still invalidate
            # the probe cache, exactly as it would in a forked worker.
            for block in journal.pending(0, self._targets_of(ops)):
                if cache is not None:
                    _apply_block(nodes, cache, block, data=False)
        events: Optional[Dict] = {} if span is not None else None
        start_ns = time.perf_counter_ns()  # repro: wall-clock=inline busy-time telemetry; never reaches the ledger
        start_cpu = time.process_time_ns()  # repro: wall-clock=inline CPU-time telemetry; never reaches the ledger
        # Nodes bill the real ledger directly, so there is nothing to merge.
        results = [_execute_op(nodes, cache, op, events) for op in ops]
        cpu_ns = time.process_time_ns() - start_cpu  # repro: wall-clock=inline CPU-time telemetry; never reaches the ledger
        elapsed_ns = time.perf_counter_ns() - start_ns  # repro: wall-clock=inline busy-time telemetry; never reaches the ledger
        self.worker_busy_ns[0] += cpu_ns
        self.supersteps += 1
        if span is not None:
            self._emit_superstep(obs, span, [elapsed_ns], [events])
        return results

    def _send_envelope(self, worker_id: int, message: tuple) -> None:
        """Frame and ship one step envelope, via shared memory when the
        blob clears the threshold (the segment is unlinked after this
        superstep's reply barrier)."""
        blob = _encode(message)
        conn = self._conns[worker_id]
        self.envelopes[worker_id] += 1
        self.ipc_tx_bytes[worker_id] += len(blob)
        threshold = self.shm_min_bytes
        if threshold is not None and len(blob) >= threshold:
            segment = _shm_create(blob)
            if segment is not None:
                self._shm_pending.append(segment)
                conn.send_bytes(_encode(("shm", segment.name, len(blob))))  # repro: uncharged-mirror=superstep IPC control frame; modeled sends are charged by the coordinator's routing
                return
        conn.send_bytes(blob)  # repro: uncharged-mirror=superstep IPC envelope; modeled sends are charged by the coordinator's routing

    def _run_forked(self, ops: Sequence[tuple], obs, span) -> List[object]:
        """Fan one superstep's reads out to the forked pool and merge back."""
        cluster = self.cluster
        journal = self.journal
        per_worker: Dict[int, List[int]] = {}
        slots: List[tuple] = []
        for position, op in enumerate(ops):
            worker_id, slot = self._route_op(op)
            slots.append(slot)
            per_worker.setdefault(worker_id, []).append(position)
        version = cluster.catalog.version
        trace = span is not None
        schedule = self.schedule
        step = self.supersteps
        self._shm_pending: List = []
        try:
            worker_order = list(per_worker)
            if schedule is not None:
                worker_order = schedule.permute(
                    "envelope", (step, -1), worker_order
                )
            for worker_id in worker_order:
                positions = per_worker[worker_id]
                worker_ops = [ops[position] for position in positions]
                blocks = journal.pending(
                    worker_id, self._targets_of(worker_ops)
                )
                if schedule is not None:
                    # Blocks target distinct (kind, node, structure) runs,
                    # so their application order must commute.
                    blocks = schedule.permute(
                        "refresh", (step, worker_id), blocks
                    )
                if cluster.sanitize:
                    for block in blocks:
                        validate_block(block)
                self._send_envelope(
                    worker_id, ("step", version, blocks, worker_ops, trace)
                )
            results: List[object] = [None] * len(ops)
            deltas: List[Dict] = []
            elapsed: List[int] = []
            event_maps: List[Dict] = []
            drain_order = sorted(per_worker)
            if schedule is not None:
                drain_order = schedule.permute("reply", (step, -1), drain_order)
            for worker_id in drain_order:
                blob = self._conns[worker_id].recv_bytes()
                self.ipc_rx_bytes[worker_id] += len(blob)
                reply = _decode(blob)
                if reply[0] != "ok":
                    raise RuntimeError(
                        f"parallel worker {worker_id} failed:\n{reply[1]}"
                    )
                for position, result in zip(per_worker[worker_id], reply[1]):
                    results[position] = result
                deltas.append(reply[2])
                elapsed.append(reply[3])
                self.worker_busy_ns[worker_id] += reply[4]
                if trace:
                    event_maps.append(reply[5])
        except (RuntimeError, EOFError, OSError) as exc:
            self.broken = True
            self.running = False
            for conn in self._conns:
                conn.close()
            self._conns = []
            self._procs = []
            self._release_shm()
            raise RuntimeError(f"parallel superstep failed: {exc}") from exc
        self._release_shm()
        self.supersteps += 1
        if schedule is not None:
            deltas = schedule.permute("merge", (step, -1), deltas)
        cluster.ledger.absorb(deltas)
        self._learn_weights(ops, slots, results)
        if trace:
            self._emit_superstep(obs, span, elapsed, event_maps)
        return results

    def _release_shm(self) -> None:
        """Unlink the shared-memory segments of the finished superstep
        (every worker has replied, so nobody still reads them)."""
        for segment in getattr(self, "_shm_pending", ()):
            try:
                segment.close()
                segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
        self._shm_pending = []

    def _emit_superstep(  # repro: obs-guarded=run_ops only passes a non-None span when obs.enabled
        self,
        obs,
        span,
        elapsed_ns: List[int],
        event_maps: List[Dict],
    ) -> None:
        """Surface one traced superstep's worker activity.

        Event tallies are merged across workers and emitted in sorted
        ``(node, kind, detail)`` order — node-scoped keys plus slot-sticky
        routing make the merged tally independent of worker count, so
        traces are bit-stable.  Wall-clock only ever reaches the
        (signature-exempt) duration histogram, never span tags or events.
        """
        merged: Dict[Tuple[int, str, str], int] = {}
        for events in event_maps:
            for slot, count in events.items():
                merged[slot] = merged.get(slot, 0) + count
        counter = obs.metrics.counter(
            "repro_worker_events_total",
            "Worker-side envelope command events per node, kind, and detail",
        )
        for slot in sorted(merged):
            node_id, kind, detail = slot
            count = merged[slot]
            span.event("ops", node=node_id, kind=kind, detail=detail, count=count)
            counter.inc(count, node=node_id, kind=kind, detail=detail)
        histogram = obs.metrics.histogram(
            "repro_superstep_seconds",
            "Per-worker busy time of each parallel superstep",
        )
        for busy in elapsed_ns:
            histogram.observe(busy / 1e9)

    # -------------------------------------------------------------- stats

    def probe_cache_stats(self) -> List[Dict[str, int]]:
        """Per-worker heavy-hitter cache statistics.

        While the pool runs this is a live round trip; after a drain it
        returns the final snapshot :meth:`stop` took, so the counters stay
        collectable (the metrics export reads them after the statement)."""
        if not self.running:
            return self._final_cache_stats
        if self.inline:
            return [self._inline_cache.stats() if self._inline_cache else {}]
        for conn in self._conns:
            conn.send_bytes(_encode(("stats",)))  # repro: uncharged-mirror=stats-collection IPC, not a modeled message
        stats = []
        for conn in self._conns:
            reply = _decode(conn.recv_bytes())
            stats.append(reply[1])
        return stats

    def heavy_hitters(self) -> List[list]:
        """Per-worker resident hot keys, ``(kind, node, structure,
        key_repr, matches)`` tuples per worker — the bench's skew report.
        Returns the :meth:`stop` snapshot once drained."""
        if not self.running:
            return self._final_heavy_hitters
        if self.inline:
            return [
                self._inline_cache.heavy_hitters() if self._inline_cache else []
            ]
        for conn in self._conns:
            conn.send_bytes(_encode(("stats",)))  # repro: uncharged-mirror=stats-collection IPC, not a modeled message
        out: List[list] = []
        for conn in self._conns:
            reply = _decode(conn.recv_bytes())
            out.append(reply[2])
        return out
