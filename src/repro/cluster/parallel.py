"""True shared-nothing execution: a fork-based node-worker pool.

The simulation's L nodes are shared-nothing *in the model* but, before this
module, were executed serially on one core.  :class:`ParallelEngine` gives
each of W worker processes a contiguous shard of nodes and runs statement
execution as BSP-style supersteps:

1. the **coordinator** (the parent process) partitions the work of one
   statement phase by destination node — reusing the batched engine's
   grouping passes — and ships each worker one envelope of node-local
   commands (inserts, deletes, index/GI probes, rowid fetches, merge
   passes);
2. each **worker** executes its commands against its resident shard
   (fragments, local indexes, GI partitions — alive for the life of the
   pool), consulting its :class:`~repro.cluster.probe_cache.HeavyHitterProbeCache`
   for hot join keys, and charges node-local work to a private
   :class:`~repro.costs.CostLedger`;
3. the coordinator collects result envelopes in shard order, merges the
   per-worker ledger deltas into the real ledger in deterministic
   ``(node, op, tag)`` order, and **replays** every mutating command on its
   own node image — uncharged, since the workers already billed the work.

The replay keeps the coordinator's nodes bit-identical to the workers'
shards at every superstep boundary.  That is what makes the engine safe:

* every read path (delete validation, optimizer statistics, query engine,
  audits, benches) sees current data with zero synchronization machinery;
* network modeling stays entirely at the coordinator — routing decides who
  sends, and routing is coordinator work — so ``NetworkStats`` is trivially
  identical to the serial engines;
* **draining is free**: stopping the pool loses nothing, and the next
  eligible statement re-forks workers from the current image (fork gives
  each worker a copy-on-write snapshot of all cluster state).  DDL,
  transactions, fault attachment, and aggregate-view maintenance all drain
  and run on the serial reference path, exactly like PR 2's gate.

Ledger cells are commutative sums of integer counts, so the merge order
cannot change the float result — the deterministic order is still enforced
so equivalence failures reproduce byte-for-byte.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..costs import CostLedger, Op
from .node import _any_index
from .probe_cache import HeavyHitterProbeCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..storage import IndexedHeap, Row
    from .cluster import Cluster


#: Every envelope command kind a worker can execute.  This frozenset is the
#: single source of truth for the op vocabulary: ``_execute_op`` must handle
#: exactly these kinds, coordinators may only construct these kinds, and the
#: REP005 static rule plus the runtime sanitizer both validate against it.
COMMAND_KINDS = frozenset(
    {
        "probe", "ins", "del", "gi_probe", "fetch",
        "gi_ins", "gi_del", "merge", "rr_del", "charge",
        "migrate", "handoff", "replica_apply",
    }
)

#: Kinds that never mutate worker shards; ``_replay`` must handle exactly
#: ``COMMAND_KINDS - READ_ONLY_KINDS`` (mutations need a coordinator mirror,
#: reads and bare charges do not).
READ_ONLY_KINDS = frozenset({"probe", "gi_probe", "fetch", "merge", "charge"})

#: The kinds ``_replay`` mirrors onto the coordinator image.
MUTATING_KINDS = COMMAND_KINDS - READ_ONLY_KINDS


def validate_op(op: tuple) -> None:
    """Sanitizer hook: reject malformed envelope commands before dispatch."""
    if not isinstance(op, tuple) or not op:
        raise AssertionError(f"sanitize: envelope op must be a non-empty tuple, got {op!r}")
    if op[0] not in COMMAND_KINDS:
        raise AssertionError(
            f"sanitize: unknown envelope op kind {op[0]!r}; "
            f"known kinds: {sorted(COMMAND_KINDS)}"
        )


def fork_available() -> bool:
    """Whether this platform supports the fork start method (POSIX)."""
    return "fork" in multiprocessing.get_all_start_methods()


def shard_ranges(num_nodes: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` node ranges, one per worker, sizes within 1."""
    workers = max(1, min(workers, num_nodes))
    base, extra = divmod(num_nodes, workers)
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for index in range(workers):
        hi = lo + base + (1 if index < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def locate_victim(fragment: "IndexedHeap", row: "Row", taken) -> Optional[int]:
    """The rowid :meth:`Node.delete_matching` would delete for ``row``,
    excluding rowids already claimed by earlier deletes of this statement
    (the serial engine mutates between searches; the exclusion set models
    exactly that).  Returns ``None`` when no live copy remains."""
    index = _any_index(fragment)
    if index is not None:
        for rowid in index.search(index.key_of(row)):
            if rowid not in taken and fragment.table.fetch(rowid) == row:
                return rowid
        return None
    for rowid, stored in fragment.table.scan():
        if rowid not in taken and stored == row:
            return rowid
    return None


# ============================================================ worker side


def _note_event(events, node_id: int, kind: str, detail: str = "") -> None:
    """Tally one compact worker event record.

    Keys are ``(node_id, kind, detail)`` — **node**-scoped, never
    worker-scoped — so the aggregated tally of a statement is identical for
    any worker count (shard ownership maps each node's commands, and hence
    its per-node cache state, to exactly one executor).  The coordinator
    merges tallies in sorted key order, making traces bit-stable.
    """
    slot = (node_id, kind, detail)
    events[slot] = events.get(slot, 0) + 1


def _execute_op(nodes, cache: Optional[HeavyHitterProbeCache], op, events=None):
    """Run one envelope command against this worker's shard.

    Charges go to the worker's private ledger through the normal
    :class:`~repro.cluster.node.Node` methods, so a worker bills exactly
    what the serial engine would for the same command.  Probe-cache hits
    charge through the ``charge_*`` helpers — the modeled cost of the probe
    they avoided re-executing.

    ``events`` (a dict, present only on traced supersteps) accumulates
    compact ``(node, kind, detail)`` tallies via :func:`_note_event`; the
    fast path pays one ``is not None`` test per command when untraced.
    """
    kind = op[0]
    if kind == "probe":
        _, node_id, fragment, column, key, tag = op
        node = nodes[node_id]
        if cache is not None:
            rows = cache.lookup_index(node_id, fragment, column, key)
            if rows is not None:
                if events is not None:
                    _note_event(events, node_id, "probe", "hit")
                node.charge_index_probe(fragment, column, len(rows), tag, times=1)
                return rows
        if events is not None:
            _note_event(
                events, node_id, "probe", "miss" if cache is not None else ""
            )
        rows = node.index_probe(fragment, column, key, tag)
        if cache is not None:
            position = node.fragment(fragment).table.schema.index_of(column)
            cache.note_index_miss(node_id, fragment, column, key, position, rows)
        return rows
    if kind == "ins":
        _, node_id, name, rows, tag = op
        if events is not None:
            _note_event(events, node_id, "ins")
        if cache is not None and cache.has_resident_rows():
            for row in rows:
                cache.note_write(node_id, name, row)
        return nodes[node_id].insert_many(name, list(rows), tag)
    if kind == "del":
        _, node_id, name, row, tag, tolerate = op
        if events is not None:
            _note_event(events, node_id, "del")
        if cache is not None:
            cache.note_write(node_id, name, row)
        try:
            return nodes[node_id].delete_matching(name, row, tag)
        except KeyError:
            if tolerate:
                return None
            raise
    if kind == "gi_probe":
        _, node_id, gi_name, key, tag = op
        node = nodes[node_id]
        if cache is not None:
            grouped = cache.lookup_gi(node_id, gi_name, key)
            if grouped is not None:
                if events is not None:
                    _note_event(events, node_id, "gi_probe", "hit")
                node.charge_gi_probe(gi_name, tag, times=1)
                return grouped
        if events is not None:
            _note_event(
                events, node_id, "gi_probe", "miss" if cache is not None else ""
            )
        grouped = node.gi_probe(gi_name, key, tag)
        if cache is not None:
            cache.note_gi_miss(node_id, gi_name, key, grouped)
        return grouped
    if kind == "fetch":
        _, node_id, relation, rowids, tag, clustered = op
        node = nodes[node_id]
        slot = tuple(rowids)
        if cache is not None:
            rows = cache.lookup_fetch(node_id, relation, slot)
            if rows is not None:
                if events is not None:
                    _note_event(events, node_id, "fetch", "hit")
                units = 1 if clustered else len(rowids)
                node.charge_fetch(relation, units, tag, times=1)
                return rows
        if events is not None:
            _note_event(
                events, node_id, "fetch", "miss" if cache is not None else ""
            )
        rows = node.fetch_by_rowids(
            relation, list(rowids), tag, clustered_on_page=clustered
        )
        if cache is not None:
            cache.note_fetch_miss(node_id, relation, slot, rows)
        return rows
    if kind == "gi_ins":
        _, node_id, gi_name, entries, tag = op
        node = nodes[node_id]
        if events is not None:
            _note_event(events, node_id, "gi_ins")
        if cache is not None:
            for key, _grid in entries:
                cache.note_gi_write(node_id, gi_name, key)
        node.gi_partition(gi_name).insert_many(entries)
        node.ledger.charge(node_id, Op.INSERT, tag, count=len(entries))
        return None
    if kind == "gi_del":
        _, node_id, gi_name, key, grid, tag, tolerate = op
        if events is not None:
            _note_event(events, node_id, "gi_del")
        if cache is not None:
            cache.note_gi_write(node_id, gi_name, key)
        try:
            nodes[node_id].gi_delete(gi_name, key, grid, tag)
            return True
        except KeyError:
            if tolerate:
                return False
            raise
    if kind == "merge":
        _, node_id, fragment, column, is_sorted, keys, tag = op
        if events is not None:
            _note_event(
                events, node_id, "merge", "scan" if is_sorted else "sort"
            )
        node = nodes[node_id]
        pages = node.fragment_pages(fragment)
        if pages:
            if is_sorted:
                node.ledger.charge(node_id, Op.SCAN_PAGE, tag, count=pages)
            else:
                cost = node.layout.sort_cost_pages(pages)
                node.ledger.charge(node_id, Op.SORT_PAGE, tag, count=cost)
        matches: Dict[object, list] = {}
        if keys:
            position = node.fragment(fragment).table.schema.index_of(column)
            wanted = set(keys)
            for row in node.scan(fragment):
                key = row[position]
                if key in wanted:
                    matches.setdefault(key, []).append(row)
        return matches
    if kind == "rr_del":
        _, node_id, name, rowid, tag = op
        node = nodes[node_id]
        if events is not None:
            _note_event(events, node_id, "rr_del")
        if cache is not None:
            cache.note_write(node_id, name, node.fragment(name).table.fetch(rowid))
        node.ledger.charge(node_id, Op.SEARCH, tag)
        node.delete_by_rowid(name, rowid, tag)
        return None
    if kind == "charge":
        _, node_id, cost_op, tag, count = op
        if events is not None:
            _note_event(events, node_id, "charge", cost_op.value)
        nodes[node_id].ledger.charge(node_id, cost_op, tag, count=count)
        return None
    if kind == "migrate":
        # Topology-change arrival: rows land in the destination fragment,
        # billed like any insert (their SENDs are charged by the planner).
        _, node_id, name, rows, tag = op
        if events is not None:
            _note_event(events, node_id, "migrate")
        if cache is not None and cache.has_resident_rows():
            for row in rows:
                cache.note_write(node_id, name, row)
        return nodes[node_id].insert_many(name, list(rows), tag)
    if kind == "handoff":
        # Topology-change departure: the planner already located the rowids,
        # so no SEARCH — just the physical removal, one write I/O per row.
        _, node_id, name, rowids, tag = op
        node = nodes[node_id]
        if events is not None:
            _note_event(events, node_id, "handoff")
        for rowid in rowids:
            if cache is not None:
                cache.note_write(node_id, name, node.fragment(name).table.fetch(rowid))
            node.delete_by_rowid(name, rowid, tag)
        return None
    if kind == "replica_apply":
        _, node_id, owner, name, action, rows, tag = op
        if events is not None:
            _note_event(events, node_id, "replica_apply", action)
        nodes[node_id].replica_apply(owner, name, action, list(rows), tag)
        return None
    raise ValueError(f"unknown parallel op {kind!r}")


def run_ops_serial(cluster: "Cluster", ops: Sequence[tuple]) -> List[object]:
    """Execute envelope ops directly against the coordinator image.

    The membership/rebalance planners speak the same stringly-typed op
    vocabulary as the parallel engine but always run with the pool drained
    (a topology change reshapes the shards), so their envelopes execute
    in-process: nodes bill the real ledger and mutations land on the real
    image, exactly like the engine's ``workers=1`` inline shard.
    """
    if cluster.sanitize:
        for op in ops:
            validate_op(op)
    nodes = cluster.nodes
    return [_execute_op(nodes, None, op) for op in ops]


def _worker_main(cluster: "Cluster", lo: int, hi: int, conn, threshold: int) -> None:
    """Worker process loop: owns ``cluster.nodes[lo:hi]`` for the pool's
    life; bills node-local work to a private ledger whose cell delta rides
    back on every reply envelope.

    Reply envelope: ``("ok", results, cells, elapsed_ns, events)``.
    ``elapsed_ns`` (always measured — two clock reads) feeds the bench's
    per-worker skew report; ``events`` carries the compact
    :func:`_note_event` tallies of a traced superstep (empty otherwise).
    """
    # Neutralize the forked copy of the engine so nothing in this process
    # can ever write to the coordinator's pipes (e.g. a stray __del__).
    engine = cluster._parallel_engine
    cluster._parallel_engine = None
    cluster.workers = 0
    if engine is not None:
        engine._disarm()
    ledger = CostLedger(cluster.ledger.params)
    for node in cluster.nodes[lo:hi]:
        node.ledger = ledger
    cache = HeavyHitterProbeCache(threshold) if threshold > 0 else None
    nodes = cluster.nodes
    cells = ledger._cells
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # pragma: no cover - parent died
            break
        kind = message[0]
        if kind == "stop":
            conn.send(("bye",))  # repro: uncharged-mirror=worker IPC control reply, not a modeled message
            break
        if kind == "stats":
            conn.send((  # repro: uncharged-mirror=worker IPC stats reply, not a modeled message
                "ok",
                cache.stats() if cache is not None else {},
                cache.heavy_hitters() if cache is not None else [],
            ))
            continue
        _, catalog_version, ops, trace = message
        if cache is not None:
            cache.check_epoch(catalog_version)
        cells.clear()
        events = {} if trace else None
        start_ns = time.perf_counter_ns()  # repro: wall-clock=worker busy-time telemetry; never reaches the ledger
        try:
            results = [_execute_op(nodes, cache, op, events) for op in ops]
        except BaseException:
            conn.send(("err", traceback.format_exc(), {}))  # repro: uncharged-mirror=worker IPC failure reply, not a modeled message
            break
        elapsed_ns = time.perf_counter_ns() - start_ns  # repro: wall-clock=worker busy-time telemetry; never reaches the ledger
        conn.send(("ok", results, dict(cells), elapsed_ns, events or {}))  # repro: uncharged-mirror=worker IPC reply envelope; the work it mirrors is already charged
    conn.close()


# ======================================================= coordinator side


class ParallelEngine:
    """Coordinator handle for the worker pool of one cluster.

    ``workers=1`` is special-cased as an **inline shard**: one worker
    covering every node is the coordinator itself, so no process is forked
    and no envelope crosses a pipe — the op stream executes directly
    against the coordinator's nodes (which bill the real ledger), the
    heavy-hitter probe cache still applies, and replay is unnecessary.
    This keeps the single-worker configuration within the engine-overhead
    budget (op-list construction only) instead of paying IPC serialization
    for no parallelism.
    """

    def __init__(
        self, cluster: "Cluster", workers: int, probe_cache_threshold: int = 3
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.cluster = cluster
        self.workers = workers
        self.probe_cache_threshold = probe_cache_threshold
        self.running = False
        #: poisoned by a worker failure; the cluster then stays serial
        self.broken = False
        self.supersteps = 0
        #: Cumulative busy nanoseconds per worker slot across the engine's
        #: whole life (survives drain/re-fork cycles).  Always maintained —
        #: the bench's per-worker skew report needs it without tracing.
        self.worker_busy_ns: List[int] = [0] * workers
        self._owner_pid = os.getpid()
        self._conns: List = []
        self._procs: List = []
        self._node_worker: List[int] = []
        self._inline_cache: Optional[HeavyHitterProbeCache] = None
        #: Last probe-cache stats observed at :meth:`stop` (worker caches
        #: die with their processes; this keeps their final counters
        #: collectable afterwards).
        self._final_cache_stats: List[Dict[str, int]] = []
        self._final_heavy_hitters: List[list] = []

    @property
    def inline(self) -> bool:
        """Whether this engine runs its single shard in-process."""
        return self.workers == 1

    # ------------------------------------------------------ pool lifecycle

    def start(self) -> None:
        """Fork the pool from the coordinator's current node image."""
        if self.running or self.broken:
            return
        if self.inline:
            if self._inline_cache is None and self.probe_cache_threshold > 0:
                self._inline_cache = HeavyHitterProbeCache(
                    self.probe_cache_threshold
                )
            self.running = True
            return
        context = multiprocessing.get_context("fork")
        ranges = shard_ranges(self.cluster.num_nodes, self.workers)
        self._node_worker = [0] * self.cluster.num_nodes
        for worker_id, (lo, hi) in enumerate(ranges):
            for node_id in range(lo, hi):
                self._node_worker[node_id] = worker_id
        self._conns = []
        self._procs = []
        for lo, hi in ranges:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(self.cluster, lo, hi, child_conn, self.probe_cache_threshold),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(process)
        self.running = True

    def stop(self) -> None:
        """Drain the pool.  Free: the coordinator image is already current,
        so worker state is simply discarded; a later :meth:`start` re-forks
        from the then-current image.  Worker probe-cache stats are
        snapshotted first so their counters survive the drain."""
        if self.running:
            try:
                self._final_cache_stats = self.probe_cache_stats()
                self._final_heavy_hitters = self.heavy_hitters()
            except (EOFError, OSError):  # pragma: no cover - dying workers
                pass
        if self.inline:
            # Discard the inline shard's cache, exactly as a forked
            # worker's cache dies with its process.
            self._inline_cache = None
            self.running = False
            return
        if not self._conns:
            self.running = False
            return
        for conn in self._conns:
            try:
                conn.send(("stop",))  # repro: uncharged-mirror=pool shutdown IPC, not a modeled message
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for conn in self._conns:
            try:
                conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
        for process in self._procs:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
        self._conns = []
        self._procs = []
        self.running = False

    def _disarm(self) -> None:
        """Forget all pool handles without touching the pipes (called in
        the forked child on its inherited copy of the engine)."""
        self._conns = []
        self._procs = []
        self.running = False

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        if self.running and os.getpid() == self._owner_pid:
            try:
                self.stop()
            except Exception:
                pass

    # --------------------------------------------------------- supersteps

    def run_ops(self, ops: Sequence[tuple]) -> List[object]:
        """One superstep: route ``ops`` to their shard owners, execute,
        merge ledger deltas deterministically, replay mutations on the
        coordinator image, and return per-op results in op order.

        When observability is enabled the superstep runs inside a
        ``superstep`` span tagged only with its ordinal and op count —
        deliberately **not** the worker count, so the span/event signature
        of a statement is identical for any number of workers (the
        determinism tests compare workers∈{1,2} byte-for-byte)."""
        if not ops:
            return []
        if self.cluster.sanitize:
            for op in ops:
                validate_op(op)
        obs = self.cluster.obs
        runner = self._run_inline if self.inline else self._run_forked
        if not obs.enabled:
            return runner(ops, None, None)
        with obs.span("superstep", index=self.supersteps, ops=len(ops)) as span:
            return runner(ops, obs, span)

    def _run_inline(self, ops: Sequence[tuple], obs, span) -> List[object]:
        """Single-shard superstep executed in-process (``workers=1``)."""
        cache = self._inline_cache
        if cache is not None:
            cache.check_epoch(self.cluster.catalog.version)
        nodes = self.cluster.nodes
        events: Optional[Dict] = {} if span is not None else None
        start_ns = time.perf_counter_ns()  # repro: wall-clock=inline busy-time telemetry; never reaches the ledger
        # Nodes bill the real ledger directly and mutations land on the
        # real image, so there is nothing to merge or replay.
        results = [_execute_op(nodes, cache, op, events) for op in ops]
        elapsed_ns = time.perf_counter_ns() - start_ns  # repro: wall-clock=inline busy-time telemetry; never reaches the ledger
        self.worker_busy_ns[0] += elapsed_ns
        self.supersteps += 1
        if span is not None:
            self._emit_superstep(obs, span, [elapsed_ns], [events])
        return results

    def _run_forked(self, ops: Sequence[tuple], obs, span) -> List[object]:
        """Fan one superstep's ops out to the forked pool and merge back."""
        owner = self._node_worker
        per_worker: Dict[int, List[Tuple[int, tuple]]] = {}
        for position, op in enumerate(ops):
            per_worker.setdefault(owner[op[1]], []).append((position, op))
        version = self.cluster.catalog.version
        trace = span is not None
        try:
            for worker_id, pairs in per_worker.items():
                self._conns[worker_id].send(  # repro: uncharged-mirror=superstep IPC envelope; modeled sends are charged by the coordinator's routing
                    ("step", version, [op for _, op in pairs], trace)
                )
            results: List[object] = [None] * len(ops)
            deltas: List[Dict] = []
            elapsed: List[int] = []
            event_maps: List[Dict] = []
            for worker_id in sorted(per_worker):
                reply = self._conns[worker_id].recv()
                if reply[0] != "ok":
                    raise RuntimeError(
                        f"parallel worker {worker_id} failed:\n{reply[1]}"
                    )
                for (position, _), result in zip(per_worker[worker_id], reply[1]):
                    results[position] = result
                deltas.append(reply[2])
                self.worker_busy_ns[worker_id] += reply[3]
                elapsed.append(reply[3])
                if trace:
                    event_maps.append(reply[4])
        except (RuntimeError, EOFError, OSError) as exc:
            self.broken = True
            self.running = False
            for conn in self._conns:
                conn.close()
            self._conns = []
            self._procs = []
            raise RuntimeError(f"parallel superstep failed: {exc}") from exc
        self.supersteps += 1
        self._merge_cells(deltas)
        replay = self._replay
        for op, result in zip(ops, results):
            replay(op, result)
        if trace:
            self._emit_superstep(obs, span, elapsed, event_maps)
        return results

    def _emit_superstep(  # repro: obs-guarded=run_ops only passes a non-None span when obs.enabled
        self,
        obs,
        span,
        elapsed_ns: List[int],
        event_maps: List[Dict],
    ) -> None:
        """Surface one traced superstep's worker activity.

        Event tallies are merged across workers and emitted in sorted
        ``(node, kind, detail)`` order — node-scoped keys make the merged
        tally independent of shard ownership, so traces are bit-stable
        across worker counts.  Wall-clock only ever reaches the (signature-
        exempt) duration histogram, never span tags or events.
        """
        merged: Dict[Tuple[int, str, str], int] = {}
        for events in event_maps:
            for slot, count in events.items():
                merged[slot] = merged.get(slot, 0) + count
        counter = obs.metrics.counter(
            "repro_worker_events_total",
            "Worker-side envelope command events per node, kind, and detail",
        )
        for slot in sorted(merged):
            node_id, kind, detail = slot
            count = merged[slot]
            span.event("ops", node=node_id, kind=kind, detail=detail, count=count)
            counter.inc(count, node=node_id, kind=kind, detail=detail)
        histogram = obs.metrics.histogram(
            "repro_superstep_seconds",
            "Per-worker busy time of each parallel superstep",
        )
        for busy in elapsed_ns:
            histogram.observe(busy / 1e9)

    def _merge_cells(self, deltas: List[Dict]) -> None:
        """Fold per-worker ledger deltas into the real ledger in
        deterministic ``(node, op, tag)`` order.  Cells are sums of integer
        counts, so the order cannot change the float totals — determinism
        makes any equivalence failure byte-reproducible anyway."""
        merged: Dict[tuple, float] = {}
        for cells in deltas:
            for cell, count in cells.items():
                merged[cell] = merged.get(cell, 0.0) + count
        target = self.cluster.ledger._cells
        for cell in sorted(merged, key=lambda c: (c[0], c[1].name, c[2].name)):
            target[cell] += merged[cell]

    def _replay(self, op: tuple, result) -> None:
        """Apply one mutating command to the coordinator's node image —
        uncharged (the worker already billed it) — so reads, validation,
        statistics, and the next fork all see current data."""
        kind = op[0]
        nodes = self.cluster.nodes
        if kind == "ins":
            rowids = nodes[op[1]].fragment(op[2]).insert_many(op[3])
            if rowids != result:  # pragma: no cover - invariant guard
                raise RuntimeError(
                    f"replay rowid divergence on {op[2]!r} at node {op[1]}"
                )
        elif kind == "del":
            if result is not None:
                nodes[op[1]].fragment(op[2]).delete(result)
        elif kind == "rr_del":
            nodes[op[1]].fragment(op[2]).delete(op[3])
        elif kind == "gi_ins":
            nodes[op[1]].gi_partition(op[2]).insert_many(op[3])
        elif kind == "gi_del":
            if result:
                nodes[op[1]].gi_partition(op[2]).delete(op[3], op[4])
        elif kind == "migrate":
            rowids = nodes[op[1]].fragment(op[2]).insert_many(op[3])
            if rowids != result:  # pragma: no cover - invariant guard
                raise RuntimeError(
                    f"replay rowid divergence on {op[2]!r} at node {op[1]}"
                )
        elif kind == "handoff":
            for rowid in op[3]:
                nodes[op[1]].fragment(op[2]).delete(rowid)
        elif kind == "replica_apply":
            nodes[op[1]].replica_mirror(op[2], op[3], op[4], op[5])
        # probe / gi_probe / fetch / merge / charge are read-or-charge only.

    # -------------------------------------------------------------- stats

    def probe_cache_stats(self) -> List[Dict[str, int]]:
        """Per-worker heavy-hitter cache statistics.

        While the pool runs this is a live round trip; after a drain it
        returns the final snapshot :meth:`stop` took, so the counters stay
        collectable (the metrics export reads them after the statement)."""
        if not self.running:
            return self._final_cache_stats
        if self.inline:
            return [self._inline_cache.stats() if self._inline_cache else {}]
        for conn in self._conns:
            conn.send(("stats",))  # repro: uncharged-mirror=stats-collection IPC, not a modeled message
        stats = []
        for conn in self._conns:
            reply = conn.recv()
            stats.append(reply[1])
        return stats

    def heavy_hitters(self) -> List[list]:
        """Per-worker resident hot keys, ``(kind, node, structure,
        key_repr, matches)`` tuples per worker — the bench's skew report.
        Returns the :meth:`stop` snapshot once drained."""
        if not self.running:
            return self._final_heavy_hitters
        if self.inline:
            return [
                self._inline_cache.heavy_hitters() if self._inline_cache else []
            ]
        for conn in self._conns:
            conn.send(("stats",))  # repro: uncharged-mirror=stats-collection IPC, not a modeled message
        out: List[list] = []
        for conn in self._conns:
            reply = conn.recv()
            out.append(reply[2])
        return out
