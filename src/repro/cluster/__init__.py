"""The shared-nothing parallel RDBMS substrate."""

from .partitioning import (
    ConsistentHashPartitioning,
    HashPartitioning,
    RoundRobinPartitioning,
    PartitioningSpec,
    stable_hash,
)
from .network import Network, NetworkStats
from .node import Node
from .catalog import (
    AuxiliaryRelationInfo,
    Catalog,
    GlobalIndexInfo,
    RelationInfo,
    ViewInfo,
)
from .cluster import Cluster
from .membership import (
    ClusterMembership,
    MembershipEvent,
    MigrationReport,
    Replicator,
    available_rows,
)
from .rebalance import RebalanceProposal, RebalanceReport, Rebalancer
from .transactions import Transaction, TransactionReport

__all__ = [
    "Cluster",
    "Node",
    "Network",
    "NetworkStats",
    "Catalog",
    "RelationInfo",
    "AuxiliaryRelationInfo",
    "GlobalIndexInfo",
    "ViewInfo",
    "ConsistentHashPartitioning",
    "HashPartitioning",
    "RoundRobinPartitioning",
    "PartitioningSpec",
    "stable_hash",
    "ClusterMembership",
    "MembershipEvent",
    "MigrationReport",
    "Replicator",
    "available_rows",
    "Rebalancer",
    "RebalanceProposal",
    "RebalanceReport",
    "Transaction",
    "TransactionReport",
]
