"""The shared-nothing parallel RDBMS substrate."""

from .partitioning import (
    HashPartitioning,
    RoundRobinPartitioning,
    PartitioningSpec,
    stable_hash,
)
from .network import Network, NetworkStats
from .node import Node
from .catalog import (
    AuxiliaryRelationInfo,
    Catalog,
    GlobalIndexInfo,
    RelationInfo,
    ViewInfo,
)
from .cluster import Cluster
from .transactions import Transaction, TransactionReport

__all__ = [
    "Cluster",
    "Node",
    "Network",
    "NetworkStats",
    "Catalog",
    "RelationInfo",
    "AuxiliaryRelationInfo",
    "GlobalIndexInfo",
    "ViewInfo",
    "HashPartitioning",
    "RoundRobinPartitioning",
    "PartitioningSpec",
    "stable_hash",
    "Transaction",
    "TransactionReport",
]
