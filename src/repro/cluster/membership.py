"""Elastic membership: online node join/leave, replication, and failover.

The paper's experiments run on a fixed fleet of L data servers.  This
module drops that assumption while keeping the cost model honest — every
row that changes machines because the topology changed is shipped as a
modeled SEND (:attr:`~repro.costs.Tag.MIGRATE`) and written as a modeled
INSERT, through the same envelope vocabulary the superstep engine uses
(``handoff`` at the source, ``migrate`` at the destination).

Three design decisions keep the rest of the engine unchanged:

**Dense id renumbering.**  Node ids are always ``0..L-1``.  A join appends
id ``L``; a departure migrates the node's rows away and then renumbers the
ids above it down by one.  Every modulo-hash partitioner, broadcast loop,
and maintenance plan keeps working on the dense range, and a fixed-topology
run never executes any of this code — its ledger stays bit-identical to
the seed engine.

**Stable tokens.**  Consistent-hash ring points are keyed by per-node
*tokens* (:class:`ClusterMembership` issues one per join, never reused),
not by node ids.  Renumbering relabels ids but never moves a surviving
node's ring position, so a departure relocates only the departed node's
keys and a join only ~1/(L+1) of them (the minimal-movement property
``tests/test_partitioning.py`` pins).

**Replicas are bags.**  :class:`Replicator` keeps K-1 charged copies of
every fragment on the owner's ring successors ``(owner+1..owner+K-1) % L``.
A copy is a content bag (no indexes — it serves availability reads and
failover restores, never probes), so its maintenance bills exactly one
SEND plus one INSERT-weight write per replicated row change.  Failover
elects the first *live* successor, restores the lost fragments from its
bags, and replays any statements the crash left queued.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    cast,
)

from ..costs import Op, Tag
from ..faults.errors import MessageLost, NodeDown
from ..storage import GlobalRowId, Row
from .node import Node
from .parallel import run_ops_serial
from .partitioning import BoundConsistentHash, BoundRoundRobin

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import Cluster


# ============================================================== membership


@dataclass
class MembershipEvent:
    """One recorded topology change."""

    epoch: int
    kind: str        # "join" | "leave" | "failover" | "rebalance"
    node: int        # node id in the *pre-change* id space
    token: int       # the stable token added or retired
    detail: str = ""


class ClusterMembership:
    """The cluster's view of who is in it: tokens, epoch, and history.

    ``tokens[i]`` is the stable identity of the node currently holding id
    ``i``.  Tokens are issued monotonically and never reused, so ring
    geometry derived from them survives any amount of churn.
    """

    def __init__(self, num_nodes: int, replication: int = 1) -> None:
        self.epoch = 0
        self.tokens: List[int] = list(range(num_nodes))
        self._next_token = num_nodes
        self.replication = replication
        #: Per-token vnode-count overrides, maintained by the rebalancer.
        self.weights: Dict[int, int] = {}
        self.events: List[MembershipEvent] = []

    def issue_token(self) -> int:
        token = self._next_token
        self._next_token += 1
        return token

    def replica_targets(self, owner: int, num_nodes: int, k: int) -> List[int]:
        """The ids holding copies of ``owner``'s fragments: the K-1 ring
        successors, in deterministic election order."""
        copies = min(k, num_nodes)
        return [(owner + i) % num_nodes for i in range(1, copies)]

    def record(self, kind: str, node: int, token: int, detail: str = "") -> MembershipEvent:
        self.epoch += 1
        event = MembershipEvent(self.epoch, kind, node, token, detail)
        self.events.append(event)
        return event


@dataclass
class MigrationReport:
    """What one topology change moved, restored, and re-synced."""

    kind: str
    epoch: int
    node: int                      # id in the pre-change space
    token: int
    moved: Dict[str, int] = field(default_factory=dict)
    restored: Dict[str, int] = field(default_factory=dict)
    gi_entries_deleted: int = 0
    gi_entries_inserted: int = 0
    replica_rows_synced: int = 0
    promoted: Optional[int] = None  # successor's post-change id (failover)
    replayed_statements: int = 0

    @property
    def moved_rows(self) -> int:
        return sum(self.moved.values())

    @property
    def restored_rows(self) -> int:
        return sum(self.restored.values())

    def summary(self) -> str:
        head = (
            f"{self.kind} of node {self.node} (token {self.token}, "
            f"epoch {self.epoch}): {self.moved_rows} row(s) migrated"
        )
        if self.restored:
            head += f", {self.restored_rows} restored from replicas"
        if self.gi_entries_deleted or self.gi_entries_inserted:
            head += (
                f", GI -{self.gi_entries_deleted}/+{self.gi_entries_inserted}"
            )
        if self.replica_rows_synced:
            head += f", {self.replica_rows_synced} replica row(s) re-synced"
        return head


# ============================================================== replication


class Replicator:
    """K-copy replication of every fragment onto ring successors.

    Hooked into :class:`~repro.cluster.node.Node`'s four fragment mutators:
    each successful primary write ships the same rows to the owner's K-1
    successor nodes (one charged SEND per row, tag ``REPLICA``) and applies
    them to the target's content bag (one charged INSERT-weight write per
    row).  Inside an undo scope every replica write records its inverse, so
    rolled-back statements leave the copies exactly consistent.

    ``paused`` suspends the hooks while a membership change rearranges the
    primaries; :meth:`sync` then re-converges the copies by diffing every
    desired bag against the primary contents — only the difference ships.
    """

    def __init__(self, cluster: "Cluster", k: int = 2) -> None:
        if k < 2:
            raise ValueError("replication needs k >= 2 (k-1 copies)")
        self.cluster = cluster
        self.k = k
        self.paused = False

    # ------------------------------------------------------------ routing

    def targets(self, owner: int, num_nodes: Optional[int] = None) -> List[int]:
        cluster = self.cluster
        count = cluster.num_nodes if num_nodes is None else num_nodes
        return cluster.membership.replica_targets(owner, count, self.k)

    def elect_successor(self, owner: int) -> Optional[int]:
        """The first *live* replica target — failover's deterministic
        promotion order."""
        faults = self.cluster.faults
        for candidate in self.targets(owner):
            if faults is None or not faults.injector.is_down(candidate):
                return candidate
        return None

    # ------------------------------------------------------------- writes

    def on_write(
        self, owner: int, name: str, action: str, rows: List[Row], tag: Tag
    ) -> None:
        """Mirror one primary mutation onto every replica target (charged).

        Replica traffic never aborts the statement: the primary write has
        already happened (and its undo is recorded by the caller *after*
        this hook returns), so a dead or unreachable peer must degrade
        redundancy, not atomicity.  A skipped copy is re-converged by the
        charged :meth:`sync` that every failover and repair runs.
        """
        if self.paused or not rows:
            return
        cluster = self.cluster
        faults = cluster.faults
        inverse = "del" if action == "ins" else "ins"
        for target in self.targets(owner):
            if faults is not None and faults.injector.is_down(target):
                continue  # dead peer: degraded redundancy until failover
            try:
                cluster.network.send_many(owner, target, len(rows), Tag.REPLICA)
            except (NodeDown, MessageLost):
                # The peer (or the owner itself) died under the send, or
                # the retry budget ran out: this copy goes stale.
                continue
            node = cluster.nodes[target]
            node.replica_apply(owner, name, action, list(rows), Tag.REPLICA)
            cluster._record_undo(
                lambda n=node, o=owner, m=name, a=inverse, r=list(rows): (
                    n.replica_mirror(o, m, a, r)
                ),
                node=target,
                tag=Tag.REPLICA,
                writes=len(rows),
                description=f"replica {inverse} of {len(rows)} row(s) of {name!r}",
            )

    # -------------------------------------------------------------- sync

    def _desired_slots(self) -> List[Tuple[int, int, str]]:
        """Every ``(owner, target, name)`` slot the current topology wants,
        in deterministic order."""
        cluster = self.cluster
        names = [name for name, _info in _partitioned_objects(cluster)]
        slots: List[Tuple[int, int, str]] = []
        for owner in range(cluster.num_nodes):
            for target in self.targets(owner):
                for name in names:
                    if cluster.nodes[owner].has_fragment(name):
                        slots.append((owner, target, name))
        return slots

    def sync(self, charged: bool = True) -> int:
        """Re-converge every replica bag with its primary; returns the
        number of rows shipped.

        ``charged=True`` (the steady-state path after a membership change)
        bills one SEND plus one INSERT-weight write per shipped row;
        ``charged=False`` is the offline build used when replication is
        first enabled or after an uncharged repair, mirroring the catalog's
        uncharged DDL backfills.
        """
        cluster = self.cluster
        desired = self._desired_slots()
        ops: List[Tuple[Any, ...]] = []
        shipped = 0
        for owner, target, name in desired:
            expected = Counter(cluster.nodes[owner].scan(name))
            bag = cluster.nodes[target].replica_bag(owner, name)
            for action, delta in (("del", bag - expected), ("ins", expected - bag)):
                if not delta:
                    continue
                rows = sorted(delta.elements(), key=repr)
                shipped += len(rows)
                if charged:
                    cluster.network.send_many(
                        owner, target, len(rows), Tag.REPLICA
                    )
                    ops.append(
                        ("replica_apply", target, owner, name, action, rows,
                         Tag.REPLICA)
                    )
                else:
                    cluster.nodes[target].replica_mirror(owner, name, action, rows)
        if ops:
            run_ops_serial(cluster, ops)
        # Retire bags no slot wants anymore (pure bookkeeping: the space was
        # never charged, only the writes into it were).
        wanted = {(target, owner, name) for owner, target, name in desired}
        for node in cluster.nodes:
            for owner, name in node.replica_slots():
                if (node.node_id, owner, name) not in wanted:
                    node.drop_replica(owner, name)
        return shipped


@contextmanager
def _replication_paused(replicator: Optional[Replicator]) -> Iterator[None]:
    if replicator is None:
        yield
        return
    previous = replicator.paused
    replicator.paused = True
    try:
        yield
    finally:
        replicator.paused = previous


# ========================================================== availability


def available_rows(cluster: "Cluster", name: str) -> List[Row]:
    """Every reachable row of fragment object ``name``.

    Live nodes serve their own fragments; for a crashed node the elected
    replica successor serves its bag instead — availability is *charged*
    (one FETCH per served row at the serving replica, tag ``QUERY``),
    because the replica read is part of the modeled system, unlike the
    auditor's free oracle reads.
    """
    faults = cluster.faults
    replicator = cluster.replicator
    rows: List[Row] = []
    for node in cluster.nodes:
        down = faults is not None and faults.injector.is_down(node.node_id)
        if not down:
            if node.has_fragment(name):
                rows.extend(node.scan(name))
            continue
        if replicator is None:
            raise NodeDown(
                f"node {node.node_id} is down and {name!r} is unreplicated"
            )
        holder = replicator.elect_successor(node.node_id)
        if holder is None:
            raise NodeDown(
                f"node {node.node_id} is down and every replica target of "
                f"{name!r} is down too"
            )
        served = cluster.nodes[holder].replica_rows(node.node_id, name)
        if served:
            cluster.ledger.charge(holder, Op.FETCH, Tag.QUERY, count=len(served))
        rows.extend(served)
    return rows


# ===================================================== migration internals


def _partitioned_objects(cluster: "Cluster") -> List[Tuple[str, object]]:
    """Every fragmented catalog object ``(name, info)``, deterministic order
    (relations, then auxiliaries, then views; each name-sorted)."""
    catalog = cluster.catalog
    objects: List[Tuple[str, object]] = []
    for name in sorted(catalog.relations):
        objects.append((name, catalog.relations[name]))
    for name in sorted(catalog.auxiliaries):
        objects.append((name, catalog.auxiliaries[name]))
    for name in sorted(catalog.views):
        objects.append((name, catalog.views[name]))
    return objects


def _require_elastic_views(cluster: "Cluster", operation: str) -> None:
    """Membership changes support plain join views (optionally deferred);
    bespoke maintainers (aggregate views) own their fragments' layout and
    must opt in explicitly before the cluster may reshape them."""
    from ..core.deferred import DeferredMaintainer
    from ..core.maintenance import JoinViewMaintainer

    for name in sorted(cluster.catalog.views):
        maintainer = cluster.catalog.views[name].maintainer
        if isinstance(maintainer, DeferredMaintainer):
            maintainer = maintainer.inner
        if type(maintainer) is not JoinViewMaintainer:
            raise NotImplementedError(
                f"{operation}: view {name!r} uses a bespoke maintainer "
                f"({type(maintainer).__name__}); elastic membership supports "
                "plain join views only"
            )


def _check_no_open_scope(cluster: "Cluster", operation: str) -> None:
    if cluster._undo_logs:
        raise RuntimeError(
            f"{operation} cannot run inside an open transaction scope"
        )


def _flush_deferred(cluster: "Cluster") -> None:
    """Graceful membership changes refresh deferred views first, so no
    queued delta references the old topology."""
    from ..core.deferred import DeferredMaintainer

    for name in sorted(cluster.catalog.views):
        maintainer = cluster.catalog.views[name].maintainer
        if isinstance(maintainer, DeferredMaintainer):
            maintainer.flush_if_stale()


def _remap_deferred(cluster: "Cluster", id_map: Dict[int, int], fallback: int) -> None:
    """Failover cannot flush (the producer is gone): rehome queued
    placements instead.  The promoted successor inherits the lost node's
    placements — it holds the replica of everything that node produced."""
    from ..core.deferred import DeferredMaintainer

    for name in sorted(cluster.catalog.views):
        maintainer = cluster.catalog.views[name].maintainer
        if isinstance(maintainer, DeferredMaintainer):
            maintainer.remap_nodes(id_map, fallback)


def _rebind(
    cluster: "Cluster", info: object, num_nodes: int, tokens: Sequence[int]
) -> object:
    """A partitioner for the post-change topology (new id space).

    Not installed by the caller until moves are planned: placements are
    computed in the new space while fragments still sit in the old one.
    """
    partitioner = info.partitioner  # type: ignore[attr-defined]
    if isinstance(partitioner, BoundConsistentHash):
        return partitioner.rebind(
            num_nodes,
            tokens=tokens,
            weights=dict(cluster.membership.weights),
        )
    return cast(object, partitioner.rebind(num_nodes))


def _plan_moves(
    cluster: "Cluster",
    name: str,
    bound: object,
    old_of_new: Dict[int, int],
    survivors: FrozenSet[int],
    skip: Optional[int],
) -> List[Tuple[int, int, Row, int]]:
    """Rows that must change nodes under ``bound``: ``(src, rowid, row,
    dst)`` in scan order, all ids in the *current* (pre-renumber) space.

    Round-robin fragments have no placement function to violate, so
    surviving nodes keep their rows; only a departing node's rows are
    re-dealt through the (rebound) cursor.
    """
    moves: List[Tuple[int, int, Row, int]] = []
    round_robin = isinstance(bound, BoundRoundRobin)
    node_of_row = bound.node_of_row  # type: ignore[attr-defined]
    for node in cluster.nodes:
        src = node.node_id
        if src == skip or not node.has_fragment(name):
            continue
        if round_robin and src in survivors:
            continue
        for rowid, row in list(node.fragment(name).table.scan()):
            dst = old_of_new[node_of_row(row)]
            if dst != src:
                moves.append((src, rowid, row, dst))
    return moves


def _execute_moves(
    cluster: "Cluster",
    name: str,
    moves: List[Tuple[int, int, Row, int]],
    tag: Tag,
) -> int:
    """Ship planned moves: per (src, dst) link, N charged SENDs, a
    ``handoff`` (INSERT-weight delete of the known rowids) at the source,
    and a ``migrate`` (insert_many) at the destination."""
    if not moves:
        return 0
    links: Dict[Tuple[int, int], List[Tuple[int, Row]]] = {}
    for src, rowid, row, dst in moves:
        links.setdefault((src, dst), []).append((rowid, row))
    ops: List[Tuple[Any, ...]] = []
    for (src, dst), entries in links.items():
        cluster.network.send_many(src, dst, len(entries), tag)
        ops.append(("handoff", src, name, [rowid for rowid, _ in entries], tag))
        ops.append(("migrate", dst, name, [row for _, row in entries], tag))
    run_ops_serial(cluster, ops)
    return len(moves)


def _execute_restores(
    cluster: "Cluster",
    name: str,
    source: int,
    assignments: List[Tuple[int, Row]],
    tag: Tag,
) -> int:
    """Re-create a dead node's rows from the elected replica: the holder
    ships each row to its new home (charged SEND + ``migrate`` insert)."""
    if not assignments:
        return 0
    by_dst: Dict[int, List[Row]] = {}
    for dst, row in assignments:
        by_dst.setdefault(dst, []).append(row)
    ops: List[Tuple[Any, ...]] = []
    for dst, rows in by_dst.items():
        cluster.network.send_many(source, dst, len(rows), tag)
        ops.append(("migrate", dst, name, rows, tag))
    run_ops_serial(cluster, ops)
    return len(assignments)


def _renumber(cluster: "Cluster", removed: int) -> Dict[int, int]:
    """Collapse node ids back to ``0..L-2`` after ``removed`` departs.

    Returns the old→new id map for surviving nodes.  Pure relabeling —
    no data moves here, so nothing is charged.
    """
    id_map = {
        old: (old if old < removed else old - 1)
        for old in range(cluster.num_nodes)
        if old != removed
    }
    departing = cluster.nodes.pop(removed)
    departing.replicator = None
    for node in cluster.nodes:
        if node.node_id > removed:
            node.node_id -= 1
        node.remap_replica_owners(id_map)
    cluster.num_nodes -= 1
    cluster.network.num_nodes -= 1
    cluster.membership.tokens.pop(removed)
    if cluster.faults is not None:
        injector = cluster.faults.injector
        injector.forget(removed)
        injector.remap_nodes(id_map)
    return id_map


def _remap_global_indexes(
    cluster: "Cluster", id_map: Dict[int, int], tag: Tag
) -> Tuple[int, int]:
    """Bring every global index to the new topology (runs in the *new* id
    space, after any renumbering).

    Relabeling a surviving entry's grid owner is uncharged metadata.  Real
    writes — purging entries that referenced the departed node's rows and
    re-deriving entries whose key now homes on a different node (the price
    of modulo-homed GIs under elasticity) — go through the ``gi_del`` /
    ``gi_ins`` envelopes with one modeled SEND from the row's holder to the
    entry's home, exactly like the maintenance path.
    """
    deleted = inserted = 0
    for name in sorted(cluster.catalog.global_indexes):
        gi = cluster.catalog.global_indexes[name]
        gi.num_nodes = cluster.num_nodes
        # Pass 1 (uncharged relabel): rewrite surviving grid owners to their
        # new ids; entries owned by the departed node leave the partition
        # here but are billed below as stale deletes.
        purged: List[Tuple[int, object, GlobalRowId]] = []
        for node in cluster.nodes:
            try:
                partition = node.gi_partition(name)
            except KeyError:
                continue
            survivors: List[Tuple[object, GlobalRowId]] = []
            for key, grid in partition.entries():
                if grid.node in id_map:
                    survivors.append(
                        (key, GlobalRowId(id_map[grid.node], grid.rowid))
                    )
                else:
                    purged.append((node.node_id, key, grid))
            partition.clear()
            partition.insert_many(survivors)
        for home, _key, _grid in purged:
            # The home node purges a dead entry on its own authority (it
            # learned of the departure from the membership announcement), so
            # there is no SEND — just the write.
            cluster.ledger.charge(home, Op.INSERT, tag)
        deleted += len(purged)
        # Pass 2 (charged diff): expected entry set under the new homes and
        # the post-migration rowids vs. what the partitions store.
        expected: Counter[Tuple[int, object, int, int]] = Counter()
        for node in cluster.nodes:
            if not node.has_fragment(gi.base):
                continue
            for rowid, row in node.fragment(gi.base).table.scan():
                key = row[gi.key_position]
                expected[(gi.home_node(key), key, node.node_id, rowid)] += 1
        actual: Counter[Tuple[int, object, int, int]] = Counter()
        for node in cluster.nodes:
            try:
                partition = node.gi_partition(name)
            except KeyError:
                continue
            for key, grid in partition.entries():
                actual[(node.node_id, key, grid.node, grid.rowid)] += 1
        stale = sorted((actual - expected).elements(), key=repr)
        fresh = sorted((expected - actual).elements(), key=repr)
        ops: List[Tuple[Any, ...]] = []
        for home, key, owner, rowid in stale:
            cluster.network.send_many(owner, home, 1, tag)
            ops.append(
                ("gi_del", home, name, key, GlobalRowId(owner, rowid), tag, False)
            )
        for home, key, owner, rowid in fresh:
            cluster.network.send_many(owner, home, 1, tag)
            ops.append(
                ("gi_ins", home, name, [(key, GlobalRowId(owner, rowid))], tag)
            )
        if ops:
            run_ops_serial(cluster, ops)
        deleted += len(stale)
        inserted += len(fresh)
    return deleted, inserted


def _provision_node(cluster: "Cluster", node: Node) -> None:
    """Mirror every cataloged object onto a joining node — fragments, local
    indexes, GI partitions.  Uncharged, like the catalog's offline builds:
    creating empty structures models no I/O."""
    catalog = cluster.catalog
    for name in sorted(catalog.relations):
        info = catalog.relations[name]
        node.create_fragment(info.schema)
        for column in sorted(info.indexes):
            node.create_local_index(name, column, info.indexes[column])
    for name in sorted(catalog.auxiliaries):
        aux = catalog.auxiliaries[name]
        node.create_fragment(aux.schema)
        node.create_local_index(name, aux.column, clustered=True)
    for name in sorted(catalog.views):
        info = catalog.views[name]
        node.create_fragment(info.schema)
        column = getattr(info.partitioner, "column", None)
        if column is not None:
            node.create_local_index(name, column, clustered=False)
    for name in sorted(catalog.global_indexes):
        gi = catalog.global_indexes[name]
        node.create_gi_partition(name, gi.base, gi.column)


# ========================================================= membership ops


def add_node(cluster: "Cluster") -> MigrationReport:
    """Grow the cluster online: provision node ``L``, shed it its share of
    every fragment (charged migration), rehome GI entries, re-sync
    replicas.  Returns what moved."""
    _require_elastic_views(cluster, "add_node")
    _check_no_open_scope(cluster, "add_node")
    membership = cluster.membership
    with cluster.obs.span(
        "membership", kind="join", epoch=membership.epoch + 1,
        num_nodes=cluster.num_nodes + 1,
    ):
        _flush_deferred(cluster)
        cluster._drain_parallel()
        with _replication_paused(cluster.replicator):
            token = membership.issue_token()
            membership.tokens.append(token)
            new_id = cluster.num_nodes
            node = Node(new_id, cluster.ledger, cluster.layout)
            node.faults = cluster.faults
            node.replicator = cluster.replicator
            cluster.nodes.append(node)
            cluster.num_nodes += 1
            cluster.network.num_nodes += 1
            cluster.peak_num_nodes = max(cluster.peak_num_nodes, cluster.num_nodes)
            _provision_node(cluster, node)
            # The joiner announces itself: one broadcast message, per leg.
            cluster.network.broadcast_many(new_id, 1, Tag.MIGRATE)
            identity = {i: i for i in range(cluster.num_nodes)}
            survivors = frozenset(range(new_id))
            report = MigrationReport(
                kind="join", epoch=membership.epoch + 1, node=new_id, token=token
            )
            for name, info in _partitioned_objects(cluster):
                bound = _rebind(cluster, info, cluster.num_nodes, membership.tokens)
                moves = _plan_moves(cluster, name, bound, identity, survivors, None)
                info.partitioner = bound  # type: ignore[attr-defined]
                count = _execute_moves(cluster, name, moves, Tag.MIGRATE)
                if count:
                    report.moved[name] = count
            report.gi_entries_deleted, report.gi_entries_inserted = (
                _remap_global_indexes(cluster, identity, Tag.MIGRATE)
            )
        if cluster.replicator is not None:
            report.replica_rows_synced = cluster.replicator.sync(charged=True)
        membership.record("join", new_id, token, detail=report.summary())
        cluster.catalog.bump_version()
        if cluster._sanitizer is not None:
            cluster._sanitizer.check("add_node")
        return report


def remove_node(cluster: "Cluster", node_id: int) -> MigrationReport:
    """Shrink the cluster online: migrate every row off ``node_id``
    (charged), renumber the survivors densely, rehome GI entries, re-sync
    replicas.  The node must be alive — a dead node needs :func:`fail_over`."""
    if not (0 <= node_id < cluster.num_nodes):
        raise ValueError(f"no node {node_id} in a {cluster.num_nodes}-node cluster")
    if cluster.num_nodes == 1:
        raise ValueError("cannot remove the last node")
    if cluster.faults is not None and cluster.faults.injector.is_down(node_id):
        raise ValueError(
            f"node {node_id} is down; graceful removal needs a live node "
            "(use fail_over for a crashed one)"
        )
    _require_elastic_views(cluster, "remove_node")
    _check_no_open_scope(cluster, "remove_node")
    membership = cluster.membership
    token = membership.tokens[node_id]
    with cluster.obs.span(
        "membership", kind="leave", epoch=membership.epoch + 1, node=node_id,
        num_nodes=cluster.num_nodes - 1,
    ):
        _flush_deferred(cluster)
        cluster._drain_parallel()
        with _replication_paused(cluster.replicator):
            # The leaver announces its departure before handing off.
            cluster.network.broadcast_many(node_id, 1, Tag.MIGRATE)
            new_count = cluster.num_nodes - 1
            new_tokens = [
                t for i, t in enumerate(membership.tokens) if i != node_id
            ]
            old_of_new = {
                new: (new if new < node_id else new + 1)
                for new in range(new_count)
            }
            survivors = frozenset(old_of_new.values())
            report = MigrationReport(
                kind="leave", epoch=membership.epoch + 1, node=node_id, token=token
            )
            for name, info in _partitioned_objects(cluster):
                bound = _rebind(cluster, info, new_count, new_tokens)
                moves = _plan_moves(
                    cluster, name, bound, old_of_new, survivors, None
                )
                info.partitioner = bound  # type: ignore[attr-defined]
                count = _execute_moves(cluster, name, moves, Tag.MIGRATE)
                if count:
                    report.moved[name] = count
            membership.weights.pop(token, None)
            id_map = _renumber(cluster, node_id)
            report.gi_entries_deleted, report.gi_entries_inserted = (
                _remap_global_indexes(cluster, id_map, Tag.MIGRATE)
            )
        if cluster.replicator is not None:
            report.replica_rows_synced = cluster.replicator.sync(charged=True)
        membership.record("leave", node_id, token, detail=report.summary())
        cluster.catalog.bump_version()
        if cluster._sanitizer is not None:
            cluster._sanitizer.check("remove_node")
        return report


def fail_over(cluster: "Cluster", node_id: int) -> MigrationReport:
    """Decommission a *crashed* node: promote its first live ring successor,
    restore its fragments from that successor's replica bags (charged),
    renumber, rehome GI entries, re-sync replicas, and replay any
    statements the crash left queued.  Afterwards the auditor must find
    zero divergence — that is the acceptance test of the fault model.
    """
    faults = cluster.faults
    if faults is None:
        raise RuntimeError("fail_over requires attach_faults (no injector)")
    if not faults.injector.is_down(node_id):
        raise ValueError(f"node {node_id} is not down; use remove_node")
    if cluster.num_nodes == 1:
        raise ValueError("cannot fail over the last node")
    replicator = cluster.replicator
    if replicator is None:
        raise RuntimeError(
            "fail_over needs enable_replication(k >= 2); without replicas "
            "the lost fragments are unrecoverable online — restart the node "
            "and run ConsistencyAuditor.repair() instead"
        )
    _require_elastic_views(cluster, "fail_over")
    _check_no_open_scope(cluster, "fail_over")
    successor = replicator.elect_successor(node_id)
    if successor is None:
        raise NodeDown(
            f"cannot fail over node {node_id}: every replica target is down"
        )
    membership = cluster.membership
    token = membership.tokens[node_id]
    with cluster.obs.span(
        "membership", kind="failover", epoch=membership.epoch + 1,
        node=node_id, successor=successor, num_nodes=cluster.num_nodes - 1,
    ):
        cluster._drain_parallel()
        with _replication_paused(replicator):
            new_count = cluster.num_nodes - 1
            new_tokens = [
                t for i, t in enumerate(membership.tokens) if i != node_id
            ]
            old_of_new = {
                new: (new if new < node_id else new + 1)
                for new in range(new_count)
            }
            survivors = frozenset(old_of_new.values())
            report = MigrationReport(
                kind="failover", epoch=membership.epoch + 1,
                node=node_id, token=token,
            )
            for name, info in _partitioned_objects(cluster):
                bound = _rebind(cluster, info, new_count, new_tokens)
                moves = _plan_moves(
                    cluster, name, bound, old_of_new, survivors, node_id
                )
                lost_rows = cluster.nodes[successor].replica_rows(node_id, name)
                info.partitioner = bound  # type: ignore[attr-defined]
                count = _execute_moves(cluster, name, moves, Tag.MIGRATE)
                if count:
                    report.moved[name] = count
                assignments = [
                    (old_of_new[bound.node_of_row(row)], row)  # type: ignore[attr-defined]
                    for row in lost_rows
                ]
                count = _execute_restores(
                    cluster, name, successor, assignments, Tag.MIGRATE
                )
                if count:
                    report.restored[name] = count
            membership.weights.pop(token, None)
            id_map = _renumber(cluster, node_id)
            report.promoted = id_map[successor]
            # The promoted successor announces the new membership.
            cluster.network.broadcast_many(report.promoted, 1, Tag.MIGRATE)
            report.gi_entries_deleted, report.gi_entries_inserted = (
                _remap_global_indexes(cluster, id_map, Tag.MIGRATE)
            )
            _remap_deferred(cluster, id_map, fallback=report.promoted)
        report.replica_rows_synced = replicator.sync(charged=True)
        replay = faults.replay_pending()
        report.replayed_statements = replay.replayed
        membership.record("failover", node_id, token, detail=report.summary())
        cluster.catalog.bump_version()
        if cluster._sanitizer is not None:
            cluster._sanitizer.check("fail_over")
        return report
