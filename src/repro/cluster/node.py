"""A data-server node: local fragments, local indexes, GI partitions.

A node knows nothing about partitioning or maintenance policy — it stores
what the cluster hands it and charges the operations it performs.  All cost
charging for node-local work happens here so the maintainers cannot forget
to bill an access path.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ..costs import CostLedger, Op, Tag
from ..storage import (
    GlobalIndexPartition,
    GlobalRowId,
    HeapTable,
    IndexedHeap,
    LocalIndex,
    PageLayout,
    Row,
    Schema,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.recovery import FaultController
    from .membership import Replicator


class Node:
    """One shared-nothing data server."""

    __slots__ = (
        "node_id", "ledger", "layout", "_fragments", "_gi_partitions", "faults",
        "_replicas", "replicator",
    )

    def __init__(self, node_id: int, ledger: CostLedger, layout: PageLayout) -> None:
        self.node_id = node_id
        self.ledger = ledger
        self.layout = layout
        self._fragments: Dict[str, IndexedHeap] = {}
        self._gi_partitions: Dict[str, GlobalIndexPartition] = {}
        #: Fault hooks; installed by :func:`repro.faults.attach_faults`.
        #: ``None`` on the fault-free path — the guards below then cost one
        #: predicate each and charge nothing, keeping seed behavior exact.
        self.faults: Optional["FaultController"] = None
        #: Replica copies of *other* nodes' fragments hosted here, keyed
        #: ``(owner_node_id, fragment_name)``.  Content bags, not heaps: a
        #: replica serves reads and failover restores, never index probes.
        self._replicas: Dict[Tuple[int, str], Counter] = {}
        #: Replication hooks; installed by ``Cluster.enable_replication``.
        #: ``None`` (one predicate per write, charging nothing) otherwise.
        self.replicator: Optional["Replicator"] = None

    # ---------------------------------------------------------- fault hooks

    def _guard(self, what: str) -> None:
        """Refuse work while this node is crashed (fault mode only)."""
        if self.faults is not None:
            self.faults.guard_node(self.node_id, what)

    def _probe_faults(self, what: str, tag: Tag) -> None:
        """Model transient probe failures: each wasted attempt costs the
        SEARCH it burned; exhausting the retry budget raises
        :class:`~repro.faults.errors.ProbeFailure`."""
        if self.faults is None:
            return
        wasted = self.faults.wasted_probe_attempts(self.node_id, what)
        if wasted:
            self.ledger.charge(self.node_id, Op.SEARCH, tag, count=wasted)

    # ------------------------------------------------------------------ DDL

    def create_fragment(self, schema: Schema) -> IndexedHeap:
        if schema.name in self._fragments:
            raise ValueError(f"node {self.node_id} already stores {schema.name!r}")
        fragment = IndexedHeap(HeapTable(schema, self.layout))
        self._fragments[schema.name] = fragment
        return fragment

    def drop_fragment(self, name: str) -> None:
        if name not in self._fragments:
            raise KeyError(
                f"node {self.node_id} stores no fragment of {name!r}"
            )
        del self._fragments[name]

    def fragment(self, name: str) -> IndexedHeap:
        try:
            return self._fragments[name]
        except KeyError:
            raise KeyError(
                f"node {self.node_id} stores no fragment of {name!r}"
            ) from None

    def has_fragment(self, name: str) -> bool:
        return name in self._fragments

    def create_local_index(
        self, name: str, column: str, clustered: bool = False
    ) -> LocalIndex:
        return self.fragment(name).create_index(column, clustered=clustered)

    def create_gi_partition(self, gi_name: str, base: str, column: str) -> GlobalIndexPartition:
        if gi_name in self._gi_partitions:
            raise ValueError(f"node {self.node_id} already holds GI {gi_name!r}")
        partition = GlobalIndexPartition(base, column)
        self._gi_partitions[gi_name] = partition
        return partition

    def drop_gi_partition(self, gi_name: str) -> None:
        if gi_name not in self._gi_partitions:
            raise KeyError(
                f"node {self.node_id} holds no partition of GI {gi_name!r}"
            )
        del self._gi_partitions[gi_name]

    def gi_partition(self, gi_name: str) -> GlobalIndexPartition:
        try:
            return self._gi_partitions[gi_name]
        except KeyError:
            raise KeyError(
                f"node {self.node_id} holds no partition of GI {gi_name!r}"
            ) from None

    # ----------------------------------------------------------------- DML

    def insert(self, name: str, row: Row, tag: Tag) -> int:
        """Insert into the local fragment; bills one INSERT."""
        self._guard(f"insert into {name!r}")
        rowid = self.fragment(name).insert(row)
        self.ledger.charge(self.node_id, Op.INSERT, tag)
        if self.replicator is not None:
            self.replicator.on_write(self.node_id, name, "ins", [row], tag)
        return rowid

    def insert_many(self, name: str, rows: List[Row], tag: Tag) -> List[int]:
        """Bulk insert into the local fragment; bills one INSERT per row.

        Charge-equivalent to N :meth:`insert` calls (the ledger cell receives
        the same sum) with one charge call and one heap update.
        """
        if not rows:
            return []
        self._guard(f"insert into {name!r}")
        rowids = self.fragment(name).insert_many(rows)
        self.ledger.charge(self.node_id, Op.INSERT, tag, count=len(rows))
        if self.replicator is not None:
            self.replicator.on_write(self.node_id, name, "ins", list(rows), tag)
        return rowids

    def delete_matching(self, name: str, row: Row, tag: Tag) -> int:
        """Delete one stored tuple equal to ``row``.

        Billed as one INSERT-weight write (the model prices all single-tuple
        table mutations identically) plus a SEARCH if an index located it.
        """
        self._guard(f"delete from {name!r}")
        fragment = self.fragment(name)
        index = _any_index(fragment)
        if index is not None:
            self.ledger.charge(self.node_id, Op.SEARCH, tag)
            key = index.key_of(row)
            for rowid in index.search(key):
                if fragment.table.fetch(rowid) == row:
                    fragment.delete(rowid)
                    self.ledger.charge(self.node_id, Op.INSERT, tag)
                    if self.replicator is not None:
                        self.replicator.on_write(
                            self.node_id, name, "del", [row], tag
                        )
                    return rowid
            raise KeyError(f"no tuple equal to {row!r} in {name!r} at node {self.node_id}")
        rowid = fragment.delete_matching(row)
        self.ledger.charge(self.node_id, Op.INSERT, tag)
        if self.replicator is not None:
            self.replicator.on_write(self.node_id, name, "del", [row], tag)
        return rowid

    def delete_by_rowid(self, name: str, rowid: int, tag: Tag) -> Row:
        self._guard(f"delete from {name!r}")
        row = self.fragment(name).delete(rowid)
        self.ledger.charge(self.node_id, Op.INSERT, tag)
        if self.replicator is not None:
            self.replicator.on_write(self.node_id, name, "del", [row], tag)
        return row

    # ------------------------------------------------------------- replicas

    def replica_bag(self, owner: int, name: str) -> Counter:
        """The (live) content bag replicating ``owner``'s ``name`` fragment
        here; created empty on first touch."""
        slot = (owner, name)
        bag = self._replicas.get(slot)
        if bag is None:
            bag = self._replicas[slot] = Counter()
        return bag

    def has_replica(self, owner: int, name: str) -> bool:
        return (owner, name) in self._replicas

    def drop_replica(self, owner: int, name: str) -> None:
        self._replicas.pop((owner, name), None)

    def replica_slots(self) -> List[Tuple[int, str]]:
        return sorted(self._replicas)

    def replica_rows(self, owner: int, name: str) -> List[Row]:
        """The replicated rows, expanded from the bag in deterministic
        (repr-sorted) order — failover restores iterate this."""
        bag = self._replicas.get((owner, name))
        if bag is None:
            return []
        return sorted(bag.elements(), key=repr)

    def replica_mirror(self, owner: int, name: str, action: str, rows: List[Row]) -> None:
        """Apply a replica mutation without guard or charge (bookkeeping:
        the coordinator's replay mirror and undo reversal use this)."""
        bag = self.replica_bag(owner, name)
        if action == "ins":
            for row in rows:
                bag[row] += 1
        elif action == "del":
            for row in rows:
                bag[row] -= 1
                if bag[row] <= 0:
                    del bag[row]
        else:
            raise ValueError(f"unknown replica action {action!r}")

    def replica_apply(
        self, owner: int, name: str, action: str, rows: List[Row], tag: Tag
    ) -> None:
        """Apply a replica mutation here; bills one INSERT-weight write per
        row (the replica copy is a real table write in the model)."""
        if not rows:
            return
        self._guard(f"replica apply for {name!r} (owner {owner})")
        self.replica_mirror(owner, name, action, rows)
        self.ledger.charge(self.node_id, Op.INSERT, tag, count=len(rows))

    def remap_replica_owners(self, mapping: Dict[int, int]) -> None:
        """Renumber replica owner ids after a membership change; replicas
        of owners absent from ``mapping`` (the departed node) are dropped."""
        self._replicas = {
            (mapping[owner], name): bag
            for (owner, name), bag in self._replicas.items()
            if owner in mapping
        }

    # -------------------------------------------------------- access paths

    def index_probe(
        self,
        name: str,
        column: str,
        key: object,
        tag: Tag,
        fetch_rows: bool = True,
    ) -> List[Row]:
        """Probe a local index: 1 SEARCH, plus per-match FETCHes when the
        index is non-clustered (clustered matches share the landing page and
        are free — paper assumptions 5 and 7)."""
        self._guard(f"index probe of {name}.{column}")
        fragment = self.fragment(name)
        index = fragment.index_on(column)
        if index is None:
            raise KeyError(f"{name!r} has no index on {column!r} at node {self.node_id}")
        self._probe_faults(f"{name}.{column}", tag)
        self.ledger.charge(self.node_id, Op.SEARCH, tag)
        rowids = index.search(key)
        if not rowids or not fetch_rows:
            return []
        if not index.clustered:
            self.ledger.charge(self.node_id, Op.FETCH, tag, count=len(rowids))
        return [fragment.table.fetch(rowid) for rowid in rowids]

    def charge_index_probe(
        self, name: str, column: str, num_matches: int, tag: Tag, times: int = 1
    ) -> None:
        """Charge the modeled cost of ``times`` repeat probes of one key
        without re-executing them (the probe-memo path).

        Exactly what ``times`` :meth:`index_probe` calls for a key with
        ``num_matches`` matches would charge: one SEARCH each, plus one
        FETCH per match when the index is non-clustered.  Never called with
        a fault controller attached (the batched engine falls back to the
        per-tuple reference path there), so no probe-fault consultation is
        needed — but the guard is kept for defense in depth.
        """
        if times <= 0:
            return
        self._guard(f"index probe of {name}.{column}")
        fragment = self.fragment(name)
        index = fragment.index_on(column)
        if index is None:
            raise KeyError(f"{name!r} has no index on {column!r} at node {self.node_id}")
        self.ledger.charge(self.node_id, Op.SEARCH, tag, count=times)
        if num_matches and not index.clustered:
            self.ledger.charge(
                self.node_id, Op.FETCH, tag, count=times * num_matches
            )

    def charge_gi_probe(self, gi_name: str, tag: Tag, times: int = 1) -> None:
        """Charge ``times`` repeat GI probes (1 SEARCH each, memoized rows)."""
        if times <= 0:
            return
        self._guard(f"probe of GI {gi_name!r}")
        self.gi_partition(gi_name)  # validate existence, as gi_probe would
        self.ledger.charge(self.node_id, Op.SEARCH, tag, count=times)

    def charge_fetch(self, name: str, units: int, tag: Tag, times: int = 1) -> None:
        """Charge ``times`` repeat rowid-fetch batches of ``units`` FETCHes
        each (the GI landing-node cost of memoized keys)."""
        if times <= 0 or units <= 0:
            return
        self._guard(f"fetch from {name!r}")
        self.ledger.charge(self.node_id, Op.FETCH, tag, count=times * units)

    def fetch_by_rowids(
        self,
        name: str,
        rowids: List[int],
        tag: Tag,
        clustered_on_page: bool = False,
    ) -> List[Row]:
        """Fetch tuples by local rowid (the GI method's landing-node work).

        ``clustered_on_page`` models a *distributed clustered* GI: the
        matches at this node share one page, so the whole batch costs one
        FETCH; otherwise each rowid costs its own FETCH.
        """
        if not rowids:
            return []
        self._guard(f"fetch from {name!r}")
        count = 1 if clustered_on_page else len(rowids)
        self.ledger.charge(self.node_id, Op.FETCH, tag, count=count)
        fragment = self.fragment(name)
        return [fragment.table.fetch(rowid) for rowid in rowids]

    def gi_probe(self, gi_name: str, key: object, tag: Tag) -> Dict[int, List[GlobalRowId]]:
        """Probe a GI partition: 1 SEARCH; entry fetch is free (assumption 6)."""
        self._guard(f"probe of GI {gi_name!r}")
        self._probe_faults(f"GI {gi_name}", tag)
        self.ledger.charge(self.node_id, Op.SEARCH, tag)
        return self.gi_partition(gi_name).search_grouped(key)

    def gi_insert(self, gi_name: str, key: object, grid: GlobalRowId, tag: Tag) -> None:
        self._guard(f"insert into GI {gi_name!r}")
        self.gi_partition(gi_name).insert(key, grid)
        self.ledger.charge(self.node_id, Op.INSERT, tag)

    def gi_delete(self, gi_name: str, key: object, grid: GlobalRowId, tag: Tag) -> None:
        self._guard(f"delete from GI {gi_name!r}")
        self.gi_partition(gi_name).delete(key, grid)
        self.ledger.charge(self.node_id, Op.INSERT, tag)

    # ----------------------------------------------------------- whole-frag

    def scan(self, name: str, tag: Optional[Tag] = None) -> List[Row]:
        """All live rows of a fragment; bills a page scan when tagged."""
        fragment = self.fragment(name)
        if tag is not None:
            self._guard(f"scan of {name!r}")
            self.ledger.charge(
                self.node_id, Op.SCAN_PAGE, tag, count=fragment.table.num_pages
            )
        return fragment.table.rows()

    def fragment_pages(self, name: str) -> int:
        return self.fragment(name).table.num_pages

    def storage_profile(self) -> List[Tuple[str, int, int]]:
        """``(name, live_tuples, heap_pages)`` for every local fragment.

        Observability's pull-based collector reads this; sorted by name so
        exports are deterministic across runs and worker counts.
        """
        return [
            (name, len(fragment.table.rows()), fragment.table.num_pages)
            for name, fragment in sorted(self._fragments.items())
        ]


def _any_index(fragment: IndexedHeap) -> Optional[LocalIndex]:
    """Prefer a clustered index, else any index, else None."""
    clustered = [ix for ix in fragment.indexes.values() if ix.clustered]
    if clustered:
        return clustered[0]
    return next(iter(fragment.indexes.values()), None)
