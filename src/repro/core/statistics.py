"""Relation statistics for maintenance-plan optimization.

Paper §2.2 observes that with multi-relation views "it is impossible to
state which alternative is best without considering relational statistics".
These are those statistics: cardinalities and per-column distinct counts,
from which join fan-outs are estimated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.cluster import Cluster


@dataclass(frozen=True)
class RelationStatistics:
    """Cardinality and distinct-value counts for one relation."""

    name: str
    rows: int
    distinct: Dict[str, int] = field(default_factory=dict)

    def fanout(self, column: str) -> float:
        """Expected matches per probed key: rows / distinct(column).

        A probe with a key absent from the relation still matches nothing,
        so this is an upper estimate, which is the safe direction for
        pricing maintenance plans.
        """
        if self.rows == 0:
            return 0.0
        d = self.distinct.get(column, 0)
        if d <= 0:
            return float(self.rows)
        return self.rows / d


class StatisticsCache:
    """Computes and caches per-relation statistics.

    Entries are keyed by (relation, row_count) so any DML that changes the
    cardinality naturally invalidates them, without hooks into the update
    path.
    """

    def __init__(self, cluster: "Cluster") -> None:
        self._cluster = cluster
        self._cache: Dict[Tuple[str, int], RelationStatistics] = {}

    def for_relation(self, name: str) -> RelationStatistics:
        info = self._cluster.catalog.relation(name)
        key = (name, info.row_count)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        rows = self._cluster.scan_relation(name)
        distinct = {
            column: len({row[position] for row in rows})
            for position, column in enumerate(info.schema.column_names)
        }
        stats = RelationStatistics(name=name, rows=len(rows), distinct=distinct)
        self._cache[key] = stats
        return stats

    def fanout(self, relation: str, column: str) -> float:
        return self.for_relation(relation).fanout(column)

    def spread(self, relation: str, column: str, num_nodes: int) -> float:
        """Expected number of nodes K holding the matches for one key:
        min(fanout, L) under the paper's uniform-placement assumption 11."""
        return min(self.fanout(relation, column), float(num_nodes))
