"""Delta types: what changed in a base relation, and where.

Maintenance is driven by *placed* rows — the row together with the node and
local rowid it occupies — because the global-index method must record exactly
that placement, and because response-time accounting depends on which node
originated each delta tuple.

:class:`DeltaBlock` is the columnar (struct-of-arrays) form of the same
information: one block describes an ordered run of mutations against a
single ``(node, structure)`` target, with parallel ``array`` columns for the
op code, tag, physical rowid, and payload reference, plus one object column
for the row/key payloads.  The parallel engine uses blocks as its refresh
journal storage and as the wire format of worker envelopes — the ``array``
columns pickle as single flat buffers (out-of-band under protocol 5), so a
thousand-entry block costs a handful of pickle frames instead of a thousand
per-tuple tuples.
"""

from __future__ import annotations

import pickle
from array import array
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    SupportsIndex,
    Tuple,
)

from ..costs import Tag
from ..storage.schema import Row


@dataclass(frozen=True, slots=True)
class PlacedRow:
    """A row plus its physical location (node, local rowid)."""

    node: int
    rowid: int
    row: Row


@dataclass(slots=True)
class Delta:
    """The net change one DML statement made to one base relation.

    An SQL ``UPDATE`` is represented as matched deletes+inserts, per the
    paper's "the steps needed when a tuple is ... updated ... are similar"
    treatment.
    """

    relation: str
    inserts: List[PlacedRow] = field(default_factory=list)
    deletes: List[PlacedRow] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.inserts and not self.deletes

    def inserted_rows(self) -> List[Row]:
        return [placed.row for placed in self.inserts]

    def deleted_rows(self) -> List[Row]:
        return [placed.row for placed in self.deletes]

    def size(self) -> int:
        return len(self.inserts) + len(self.deletes)


#: Block kinds: which structure namespace the block's target name lives in.
FRAG_DELTA = "frag_delta"  # heap fragment of a base relation / AR / view
GI_DELTA = "gi_delta"  # global-index partition

#: Per-entry op codes (the ``ops`` column).
OP_INSERT = 0
OP_DELETE = 1

#: Stable one-byte encoding of :class:`~repro.costs.Tag` for the ``tags``
#: column.  Enum definition order is part of the repo's public cost model,
#: so the index is stable across processes of one build — and blocks only
#: ever travel between a coordinator and the workers it forked.
_TAGS: Tuple[Tag, ...] = tuple(Tag)
_TAG_CODES = {tag: code for code, tag in enumerate(_TAGS)}


def _rebuild_block(
    kind: str,
    node: int,
    name: str,
    typecodes: Sequence[str],
    ops: Any,
    tags: Any,
    rowids: Any,
    refs: Any,
    keys: Sequence[object],
) -> "DeltaBlock":
    """Reconstruct a :class:`DeltaBlock` from its pickled columns.

    ``ops``/``tags``/``rowids``/``refs`` arrive as buffer views —
    :class:`pickle.PickleBuffer` out-of-band buffers under protocol 5,
    in-band ``bytes`` otherwise (hence ``Any``); ``array.frombytes``
    accepts either.
    """
    block = DeltaBlock(kind, node, name)
    for column, typecode, data in zip(
        ("ops", "tags", "rowids", "refs"), typecodes, (ops, tags, rowids, refs)
    ):
        rebuilt = array(typecode)
        rebuilt.frombytes(data)
        setattr(block, column, rebuilt)
    block.keys = list(keys)
    return block


class DeltaBlock:
    """A columnar run of mutations against one ``(node, name)`` structure.

    Struct-of-arrays layout — four parallel ``array`` columns plus one
    object column, entry ``i`` spanning all five:

    ======== ============ ====================================================
    column   type         meaning
    ======== ============ ====================================================
    ops      ``array(b)`` :data:`OP_INSERT` or :data:`OP_DELETE`
    tags     ``array(b)`` :class:`~repro.costs.Tag` code (:data:`_TAG_CODES`)
    rowids   ``array(q)`` physical rowid (insert: assigned; delete: victim)
    refs     ``array(q)`` payload reference — the owner node of a GI entry's
                          :class:`GlobalRowId`; 0 for fragment entries
    keys     ``list``     row tuple (:data:`FRAG_DELTA`) or join key
                          (:data:`GI_DELTA`)
    ======== ============ ====================================================

    Entry order is application order: the parallel engine's refresh journal
    appends in coordinator execution order and workers apply ``entries()``
    front to back, which is what keeps worker-assigned rowids bit-identical
    to the coordinator's.  ``__reduce_ex__`` emits the ``array`` columns as
    :class:`pickle.PickleBuffer` views under protocol 5 so the transport can
    ship them out-of-band (zero-copy on the receive side).
    """

    __slots__ = ("kind", "node", "name", "ops", "tags", "rowids", "refs", "keys")

    def __init__(self, kind: str, node: int, name: str) -> None:
        self.kind = kind
        self.node = node
        self.name = name
        self.ops = array("b")
        self.tags = array("b")
        self.rowids = array("q")
        self.refs = array("q")
        self.keys: List[object] = []

    # ------------------------------------------------------------- building

    def add(
        self, op: int, rowid: int, key: object, tag: Tag, ref: int = 0
    ) -> None:
        """Append one entry (columns stay parallel by construction)."""
        self.ops.append(op)
        self.tags.append(_TAG_CODES[tag])
        self.rowids.append(rowid)
        self.refs.append(ref)
        self.keys.append(key)

    def extend(
        self, op: int, rowids: Sequence[int], keys: Sequence[object], tag: Tag,
        refs: Optional[Sequence[int]] = None,
    ) -> None:
        """Append a same-op, same-tag run in bulk.

        The columnar layout makes this nearly free — repeated one-byte
        columns fill from ``bytes`` constants and the wide columns extend
        at C speed — which is what keeps the refresh journal's cost per
        mutated statement inside the ``workers=1`` overhead budget.
        """
        count = len(rowids)
        if not count:
            return
        self.ops.frombytes(bytes(count) if op == 0 else bytes((op,)) * count)
        self.tags.frombytes(bytes((_TAG_CODES[tag],)) * count)
        self.rowids.extend(rowids)
        if refs is None:
            self.refs.frombytes(bytes(8 * count))  # zeros, q is 8 bytes wide
        else:
            self.refs.extend(refs)
        self.keys.extend(keys)

    # ------------------------------------------------------------ consuming

    def __len__(self) -> int:
        return len(self.ops)

    def entries(self) -> Iterator[Tuple[int, int, object, Tag, int]]:
        """Yield ``(op, rowid, key, tag, ref)`` per entry, in order."""
        tags = _TAGS
        for op, rowid, key, code, ref in zip(
            self.ops, self.rowids, self.keys, self.tags, self.refs
        ):
            yield op, rowid, key, tags[code], ref

    def tail(self, start: int) -> "DeltaBlock":
        """The columnar slice ``[start:]`` — the unit the refresh journal
        ships to a worker whose cursor stands at ``start``."""
        block = DeltaBlock(self.kind, self.node, self.name)
        block.ops = self.ops[start:]
        block.tags = self.tags[start:]
        block.rowids = self.rowids[start:]
        block.refs = self.refs[start:]
        block.keys = self.keys[start:]
        return block

    @property
    def nbytes(self) -> int:
        """Bytes held by the four fixed-width columns (the object column's
        payload is excluded — rows are shared, not owned)."""
        return sum(
            len(column) * column.itemsize
            for column in (self.ops, self.tags, self.rowids, self.refs)
        )

    # ------------------------------------------------- per-tuple round trip

    @classmethod
    def from_delta(cls, delta: "Delta", tag: Tag = Tag.BASE) -> List["DeltaBlock"]:
        """Per-node blocks equivalent to a placed :class:`Delta` — deletes
        first, then inserts, per-node order preserved (the serial engine's
        application order).  Nodes appear in first-touch order."""
        blocks: Dict[int, "DeltaBlock"] = {}
        for op, placed_rows in (
            (OP_DELETE, delta.deletes),
            (OP_INSERT, delta.inserts),
        ):
            for placed in placed_rows:
                block = blocks.get(placed.node)
                if block is None:
                    block = blocks[placed.node] = cls(
                        FRAG_DELTA, placed.node, delta.relation
                    )
                block.add(op, placed.rowid, placed.row, tag)
        return list(blocks.values())

    def to_delta(self) -> "Delta":
        """The per-tuple :class:`Delta` this fragment block encodes."""
        if self.kind != FRAG_DELTA:
            raise ValueError(f"to_delta on a {self.kind!r} block")
        delta = Delta(relation=self.name)
        for op, rowid, row, _tag, _ref in self.entries():
            target = delta.inserts if op == OP_INSERT else delta.deletes
            target.append(PlacedRow(self.node, rowid, row))
        return delta

    # -------------------------------------------------------------- pickling

    def __reduce_ex__(self, protocol: SupportsIndex) -> Tuple[Any, ...]:
        columns = (self.ops, self.tags, self.rowids, self.refs)
        typecodes = tuple(column.typecode for column in columns)
        if int(protocol) >= 5:
            buffers = tuple(pickle.PickleBuffer(column) for column in columns)
        else:
            buffers = tuple(column.tobytes() for column in columns)
        return (
            _rebuild_block,
            (self.kind, self.node, self.name, typecodes, *buffers,
             tuple(self.keys)),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeltaBlock):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.node == other.node
            and self.name == other.name
            and self.ops == other.ops
            and self.tags == other.tags
            and self.rowids == other.rowids
            and self.refs == other.refs
            and self.keys == other.keys
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaBlock({self.kind!r}, node={self.node}, name={self.name!r}, "
            f"entries={len(self)})"
        )


@dataclass(frozen=True, slots=True)
class ViewDelta:
    """Computed change to a view: rows to add and rows to remove.

    ``inserts``/``deletes`` pair each result row with the node that produced
    it (the join site), which determines the SEND to the view's home node.
    """

    view: str
    inserts: Tuple[Tuple[int, Row], ...] = ()
    deletes: Tuple[Tuple[int, Row], ...] = ()
