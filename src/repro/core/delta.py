"""Delta types: what changed in a base relation, and where.

Maintenance is driven by *placed* rows — the row together with the node and
local rowid it occupies — because the global-index method must record exactly
that placement, and because response-time accounting depends on which node
originated each delta tuple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..storage.schema import Row


@dataclass(frozen=True, slots=True)
class PlacedRow:
    """A row plus its physical location (node, local rowid)."""

    node: int
    rowid: int
    row: Row


@dataclass(slots=True)
class Delta:
    """The net change one DML statement made to one base relation.

    An SQL ``UPDATE`` is represented as matched deletes+inserts, per the
    paper's "the steps needed when a tuple is ... updated ... are similar"
    treatment.
    """

    relation: str
    inserts: List[PlacedRow] = field(default_factory=list)
    deletes: List[PlacedRow] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.inserts and not self.deletes

    def inserted_rows(self) -> List[Row]:
        return [placed.row for placed in self.inserts]

    def deleted_rows(self) -> List[Row]:
        return [placed.row for placed in self.deletes]

    def size(self) -> int:
        return len(self.inserts) + len(self.deletes)


@dataclass(frozen=True, slots=True)
class ViewDelta:
    """Computed change to a view: rows to add and rows to remove.

    ``inserts``/``deletes`` pair each result row with the node that produced
    it (the join site), which determines the SEND to the view's home node.
    """

    view: str
    inserts: Tuple[Tuple[int, Row], ...] = ()
    deletes: Tuple[Tuple[int, Row], ...] = ()
