"""Deferred view maintenance.

The paper maintains views *immediately* — inside the updating transaction.
Operational warehouses often defer instead: queue the deltas and refresh
the view in batches.  This extension wraps any
:class:`~repro.core.maintenance.JoinViewMaintainer` with a queue that

* **nets** pending changes (an insert annihilates a queued delete of the
  same tuple and vice versa, so churn costs nothing at refresh time), and
* **batches** the survivors into one maintenance pass, letting the regime
  chooser amortize the partner access (many small transactions refresh at
  sort-merge cost instead of per-tuple probes).

Correctness note: pending deltas of one relation may be held back freely —
no self-joins means a relation's own delta never changes its probe side.
A delta on a *different* relation, however, must not be queued behind one
it could interact with (the earlier delta would later join against partner
state from the future), so the queue auto-flushes whenever the updated
relation changes.  The flush must run *before* the new statement's base
writes land — the cluster triggers it from
``Cluster._flush_stale_deferred`` ahead of the write; the relation-switch
check in :meth:`DeferredMaintainer.apply` remains as a backstop for
maintainers driven outside a cluster statement.  Reads through
:meth:`flush_if_stale` get refresh-on-demand semantics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

from .delta import Delta, PlacedRow
from .maintenance import JoinViewMaintainer


@dataclass
class RefreshReport:
    """What one refresh applied and what the netting saved."""

    flushed_inserts: int
    flushed_deletes: int
    netted_away: int          # queued changes cancelled before maintenance
    statements_absorbed: int


class DeferredMaintainer:
    """Queue-and-batch wrapper with the maintainer interface.

    Registered in the catalog exactly like an eager maintainer; the
    cluster's update path calls :meth:`apply`, which queues.  ``flush_threshold``
    (pending tuples) triggers automatic refresh; ``None`` defers until an
    explicit :meth:`refresh` (or a cross-relation delta forces one).
    """

    def __init__(
        self,
        inner: JoinViewMaintainer,
        flush_threshold: Optional[int] = None,
    ) -> None:
        if flush_threshold is not None and flush_threshold < 1:
            raise ValueError("flush_threshold must be >= 1 (or None)")
        self.inner = inner
        self.flush_threshold = flush_threshold
        self._pending_relation: Optional[str] = None
        self._pending: Counter = Counter()  # row -> net multiplicity (+/-)
        self._placed: Dict[object, List[PlacedRow]] = {}
        self._statements = 0
        self._netted = 0

    # ------------------------------------------------------------- status

    @property
    def view_info(self):
        return self.inner.view_info

    @property
    def bound(self):
        return self.inner.bound

    @property
    def planner(self):
        return self.inner.planner

    @property
    def pending_changes(self) -> int:
        """Net queued tuple changes awaiting refresh."""
        return sum(abs(count) for count in self._pending.values())

    @property
    def is_stale(self) -> bool:
        return self.pending_changes > 0

    # ------------------------------------------------------------- writes

    def apply(self, delta: Delta) -> None:
        """Queue a base-relation delta; flush first if it switches relation.

        Inside a cluster statement the relation-switch flush has already
        run (``Cluster._flush_stale_deferred``, *before* the base writes);
        the check here is a backstop for directly-driven maintainers.
        """
        if delta.is_empty:
            return
        self._snapshot_queue_undo()
        if self._pending_relation not in (None, delta.relation):
            self.refresh()
        self._pending_relation = delta.relation
        self._statements += 1
        for placed in delta.deletes:
            self._note(placed, -1)
        for placed in delta.inserts:
            self._note(placed, +1)
        if (
            self.flush_threshold is not None
            and self.pending_changes >= self.flush_threshold
        ):
            self.refresh()

    def _note(self, placed: PlacedRow, sign: int) -> None:
        """Fold one placed change into the queue, keeping ``_placed`` pruned
        to exactly the surviving insert placements.

        Invariant: ``len(_placed[row]) == max(0, _pending[row])``.  A delete
        that cancels a queued insert pops that insert's placement; an insert
        that cancels a queued delete records no placement (nothing of it
        will flush).  Safe because equal rows hash to equal home nodes, so
        every placement of one row carries the same source node — refresh
        charges cannot depend on *which* placement survives.
        """
        row = placed.row
        before = self._pending[row]
        after = before + sign
        if abs(after) < abs(before):
            self._netted += 2  # one queued change cancelled one incoming
        if after == 0:
            del self._pending[row]
            self._placed.pop(row, None)
            return
        self._pending[row] = after
        if sign > 0 and after > 0:
            self._placed.setdefault(row, []).append(placed)
        elif sign < 0 and before > 0:
            placements = self._placed.get(row)
            if placements:
                placements.pop()

    def _snapshot_queue_undo(self) -> None:
        """Record the queue's current state into the active undo scope.

        The queue is derived bookkeeping, not stored pages, so restoring it
        costs no write I/Os (``writes=0``) — but a rolled-back statement
        must not leave its delta queued, or the next refresh would apply
        phantom changes.  No-op on the fault-free path.
        """
        cluster = self.inner.cluster
        if not cluster._undo_logs:
            return
        pending = Counter(self._pending)
        placed = {row: list(entries) for row, entries in self._placed.items()}
        relation = self._pending_relation
        statements, netted = self._statements, self._netted

        def restore() -> None:
            self._pending = Counter(pending)
            self._placed = {row: list(entries) for row, entries in placed.items()}
            self._pending_relation = relation
            self._statements = statements
            self._netted = netted

        cluster._undo_logs[-1].record(
            restore,
            description=f"restore deferred queue of {self.view_info.name!r}",
        )

    # ------------------------------------------------------------ refresh

    def refresh(self) -> RefreshReport:
        """Apply all pending changes as one batched maintenance pass.

        With a fault controller attached, the whole batch runs inside an
        atomic scope: a fault mid-refresh restores both the view and the
        pending queue, so nothing is half-applied.
        """
        faults = self.inner.cluster.faults
        if faults is not None and faults.policy.undo:
            with faults.atomic(f"refresh of {self.view_info.name!r}"):
                return self._refresh_now()
        return self._refresh_now()

    def _refresh_now(self) -> RefreshReport:
        self._snapshot_queue_undo()
        if not self._pending:
            report = RefreshReport(0, 0, self._netted, self._statements)
            self._reset_counters()
            return report
        relation = self._pending_relation
        assert relation is not None
        cluster = self.inner.cluster
        obs = cluster.obs
        with obs.span(
            "deferred_refresh",
            view=self.view_info.name,
            relation=relation,
            pending=self.pending_changes,
            netted=self._netted,
            statements=self._statements,
        ) as refresh_span:
            report = self._flush_pending(relation)
        if obs.enabled:
            obs.observe_span_latency(
                refresh_span, kind="deferred_refresh", view=self.view_info.name
            )
        return report

    def _flush_pending(self, relation: str) -> RefreshReport:
        """Materialize and apply the queue (the body of a refresh)."""
        cluster = self.inner.cluster
        if cluster.workers is not None and type(self.inner) is JoinViewMaintainer:
            # A deferred refresh is its own "statement": give it the same
            # chance to (re)start the worker pool an eager statement gets.
            # _parallel_start drains instead when faults/undo gate it.
            cluster._parallel_start()
        inserts: List[PlacedRow] = []
        deletes: List[PlacedRow] = []
        for row, net in self._pending.items():
            if net > 0:
                # One routing pass: _placed holds exactly the ``net``
                # surviving insert placements (pruned at queue time by
                # _note), most recent first at flush, as before.
                placements = self._placed.get(row, [])
                if len(placements) >= net:
                    inserts.extend(placements[len(placements) - net:][::-1])
                else:  # pragma: no cover - guarded by the _note invariant
                    inserts.extend(placements[::-1])
                    inserts.extend(
                        PlacedRow(0, -1, row)
                        for _ in range(net - len(placements))
                    )
            else:
                # Deleted rows have already left the base fragments; their
                # placement only needs the originating node for SEND
                # accounting, so node 0 is a neutral stand-in.
                deletes.extend(PlacedRow(0, -1, row) for _ in range(-net))
        batch = Delta(relation=relation, inserts=inserts, deletes=deletes)
        self.inner.apply(batch)
        report = RefreshReport(
            flushed_inserts=len(inserts),
            flushed_deletes=len(deletes),
            netted_away=self._netted,
            statements_absorbed=self._statements,
        )
        self._pending.clear()
        self._placed.clear()
        self._pending_relation = None
        self._reset_counters()
        return report

    def _reset_counters(self) -> None:
        self._statements = 0
        self._netted = 0

    def flush_if_stale(self) -> Optional[RefreshReport]:
        """Refresh-on-read: bring the view current before serving it."""
        if self.is_stale:
            return self.refresh()
        return None

    def remap_nodes(self, mapping: Dict[int, int], fallback: int) -> None:
        """Rehome queued placements after a membership change.

        ``mapping`` sends surviving old node ids to their new dense ids;
        placements at an id absent from the mapping (the failed node) move
        to ``fallback`` — the promoted replica successor, which holds a
        copy of everything the lost producer stored.  Pure bookkeeping:
        placements only feed SEND-source accounting at flush time.
        """
        for placements in self._placed.values():
            placements[:] = [
                placed
                if mapping.get(placed.node, -1) == placed.node
                else PlacedRow(mapping.get(placed.node, fallback), -1, placed.row)
                for placed in placements
            ]

    def discard_pending(self) -> int:
        """Drop the queue without applying it; returns the changes dropped.

        Used by :meth:`repro.faults.ConsistencyAuditor.repair`: a naive
        recomputation already reflects every base write, so replaying the
        queued deltas on top would double-apply them.
        """
        dropped = self.pending_changes
        self._pending.clear()
        self._placed.clear()
        self._pending_relation = None
        self._reset_counters()
        return dropped


def defer_view(cluster, view_name: str, flush_threshold: Optional[int] = None) -> DeferredMaintainer:
    """Switch a registered view to deferred maintenance.

    Returns the wrapper (also installed in the catalog).  Call
    ``wrapper.refresh()`` — or read through ``fresh_view_rows`` — to bring
    the view current.
    """
    info = cluster.catalog.view(view_name)
    if isinstance(info.maintainer, DeferredMaintainer):
        raise ValueError(f"view {view_name!r} is already deferred")
    wrapper = DeferredMaintainer(info.maintainer, flush_threshold)
    info.maintainer = wrapper
    return wrapper


def fresh_view_rows(cluster, view_name: str):
    """View contents with refresh-on-demand semantics."""
    info = cluster.catalog.view(view_name)
    maintainer = info.maintainer
    if isinstance(maintainer, DeferredMaintainer):
        maintainer.flush_if_stale()
    return cluster.view_rows(view_name)
