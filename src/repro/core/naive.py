"""The naive maintenance method (paper §2.1.1).

No extra structures: each delta tuple is broadcast to all L nodes, because
nothing records where the matching partner tuples live.  Every node probes
its local index on the partner's join attribute; the few nodes that find
matches forward the result tuples to the view's home nodes.  Cheap in
space, expensive in work: "instead of each node of the parallel RDBMS
handling a fraction of the update stream, all nodes have to process every
element of the update stream".

The only provisioning the method needs is a local index on every probed
join attribute (the paper's J_A/J_B, clustered or not per scenario).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .view import BoundView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.cluster import Cluster


def provision_naive(
    cluster: "Cluster", bound: BoundView, clustered_indexes: bool = False
) -> None:
    """Ensure every join attribute of every base relation has a local index.

    ``clustered_indexes`` requests clustered indexes where possible — the
    paper's "naive method with clustered index" scenario.  Existing indexes
    are kept as declared; a fragment already clustered on another column
    falls back to a non-clustered index, mirroring the single-clustering
    restriction Teradata imposed on the authors.
    """
    if cluster.faults is not None:
        cluster.faults.require_all_up("provisioning naive-method indexes")
    for relation in bound.definition.relations:
        info = cluster.catalog.relation(relation)
        for column in bound.definition.join_columns_of(relation):
            if column in info.indexes:
                continue
            if clustered_indexes:
                already_clustered = any(info.indexes.values())
                cluster.create_index(relation, column, clustered=not already_clustered)
            else:
                cluster.create_index(relation, column, clustered=False)
