"""Auxiliary-relation storage trimming (paper §2.1.2).

An auxiliary relation need not copy the whole base relation:
``AR_R = partition(select(project(R)))`` — only the columns a view's select
list and join conditions need, and only the rows its selections admit.
When several views share the same (base relation, join attribute), one
auxiliary relation can serve them all if it keeps the union of their needs;
the paper notes both the saving and the flip side (one full-width shared AR
can grow as large as the base relation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from .view import BoundView


@dataclass(frozen=True)
class AuxiliaryRequirement:
    """What one view demands from an AR of ``base`` partitioned on ``column``."""

    base: str
    column: str
    needed_columns: Tuple[str, ...]
    view: str


def requirement_for(bound: BoundView, base: str, column: str) -> AuxiliaryRequirement:
    """The trimmed column set view ``bound`` needs from AR_base(column)."""
    needed = bound.columns_needed_from(base)
    if column not in needed:
        needed = [column, *needed]
    return AuxiliaryRequirement(
        base=base,
        column=column,
        needed_columns=tuple(needed),
        view=bound.definition.name,
    )


def merge_requirements(
    requirements: Iterable[AuxiliaryRequirement],
) -> Tuple[str, ...]:
    """Union of column needs across views sharing one (base, column) AR.

    Mirrors the paper's "keep only one auxiliary relation AR_A for all the
    views that use the same attribute A.c" consolidation.  Column order
    follows first appearance, so the shared AR's schema is stable.
    """
    merged: List[str] = []
    base = column = None
    for requirement in requirements:
        if base is None:
            base, column = requirement.base, requirement.column
        elif (requirement.base, requirement.column) != (base, column):
            raise ValueError(
                "cannot merge requirements of different auxiliary relations: "
                f"{(base, column)} vs {(requirement.base, requirement.column)}"
            )
        for name in requirement.needed_columns:
            if name not in merged:
                merged.append(name)
    if base is None:
        raise ValueError("no requirements to merge")
    return tuple(merged)


def trimming_savings(
    base_arity: int,
    base_rows: int,
    kept_columns: Sequence[str],
) -> float:
    """Fraction of the full-copy storage a trimmed AR avoids (by width).

    A width-only estimate (rows are kept unless a selection predicate is
    supplied); used in reports and the storage-vs-speed ablation bench.
    """
    if base_arity <= 0:
        raise ValueError("base_arity must be positive")
    kept = len(kept_columns)
    if kept > base_arity:
        raise ValueError("cannot keep more columns than the base relation has")
    return (base_arity - kept) / base_arity
