"""Maintenance-plan optimization and method advice.

Two optimization problems from the paper live here:

* **Plan choice** (§2.2): with views over three or more relations there are
  several legal hop orders (four for the triangle example); which is best
  "is impossible to state without considering relational statistics".
  :class:`MaintenancePlanner` enumerates the orders and prices them with
  fan-out estimates.
* **Method choice** (§4): "our analytical model could form the basis for a
  cost model that would enable a system to choose the best approach
  automatically".  :class:`MethodAdvisor` is that cost model: given an
  expected update size and a storage budget it recommends naive / auxiliary
  relation / global index per view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..costs import CostParameters
from .maintenance import MaintenanceMethod
from .multiway import (
    AccessPath,
    AuxiliaryAccess,
    BaseAccess,
    CompiledJoin,
    CompiledPlan,
    GlobalIndexAccess,
    Hop,
    HopChoice,
    MaintenancePlan,
    attach_select,
    compile_join,
    enumerate_orders,
)
from .statistics import StatisticsCache
from .view import BoundView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.cluster import Cluster


class PlanningError(RuntimeError):
    """Raised when a required auxiliary structure is missing."""


class MaintenancePlanner:
    """Chooses, for each updated base relation, how to join its delta
    through the remaining relations of one view."""

    def __init__(
        self,
        cluster: "Cluster",
        bound: BoundView,
        method: MaintenanceMethod,
        statistics: Optional[StatisticsCache] = None,
    ) -> None:
        self.cluster = cluster
        self.bound = bound
        self.method = method
        self.statistics = statistics or StatisticsCache(cluster)
        self._plan_cache: Dict[Tuple, MaintenancePlan] = {}
        self._compiled_cache: Dict[Tuple, CompiledPlan] = {}
        self._order_counts: Dict[Tuple[str, int], int] = {}

    # ------------------------------------------------------------ planning

    @staticmethod
    def _prune_stale(cache: Dict[Tuple, object], version: int) -> None:
        """Drop cache entries made under an older catalog version.

        Every cache key here carries the catalog version in position 1;
        a DDL bump makes those entries unreachable, so they are garbage.
        Pruning runs only on cache *misses* (the first plan after a DDL),
        never on the per-statement hit path, and changes no behavior —
        stale entries could never be returned anyway.
        """
        stale = [key for key in cache if key[1] != version]
        for key in stale:
            del cache[key]

    def _signature_key(self, updated: str) -> Tuple:
        """Plan-cache key: catalog version (DDL invalidation) plus the
        relation cardinalities (replan as data grows, matching the
        cardinality-keyed statistics that drive pricing)."""
        signature = tuple(
            self.cluster.catalog.relation(name).row_count
            for name in self.bound.definition.relations
        )
        return (updated, self.cluster.catalog.version, signature)

    def _single_order(self, updated: str) -> bool:
        """Whether only one legal hop order exists (every two-relation
        view).  Memoized per catalog version — new structures can change
        neither the order count (it depends only on the join graph) but a
        version bump is a cheap, safe invalidation boundary."""
        order_key = (updated, self.cluster.catalog.version)
        count = self._order_counts.get(order_key)
        if count is None:
            self._prune_stale(self._order_counts, order_key[1])
            count = len(enumerate_orders(self.bound, updated))
            self._order_counts[order_key] = count
        return count <= 1

    def plan_for(self, updated: str) -> MaintenancePlan:
        """The cheapest legal plan for a delta on ``updated``.

        Cached per catalog version and catalog cardinalities, so plans
        adapt as data grows (the statistics that drive pricing are
        cardinality-keyed too).
        """
        key = self._signature_key(updated)
        plan = self._plan_cache.get(key)
        if plan is None:
            self._prune_stale(self._plan_cache, key[1])
            plan = self._choose_plan(updated)
            self._plan_cache[key] = plan
        return plan

    def compiled_for(self, updated: str) -> CompiledPlan:
        """The plan for ``updated`` with mapper, probe-key positions, and
        filter positions resolved once.

        When only one legal hop order exists (every two-relation view),
        cardinality growth cannot change the plan — only its object
        identity — so the compiled artifact is cached per catalog version
        alone and survives data growth; multiway views key on the full
        cardinality signature, tracking :meth:`plan_for`'s replanning.
        """
        version = self.cluster.catalog.version
        if self._single_order(updated):
            key: Tuple = (updated, version)
        else:
            key = self._signature_key(updated)
        compiled = self._compiled_cache.get(key)
        obs = self.cluster.obs
        if compiled is None:
            with obs.span(
                "plan_compile",
                view=self.bound.definition.name,
                relation=updated,
                method=self.method.value,
            ):
                self._prune_stale(self._compiled_cache, version)
                compiled = attach_select(
                    self.bound, self._shared_join(self.plan_for(updated))
                )
                self._compiled_cache[key] = compiled
            if obs.enabled:
                self._plan_cache_event(obs, updated, "miss")
        elif obs.enabled:
            self._plan_cache_event(obs, updated, "compiled_hit")
        return compiled

    def _shared_join(self, plan: MaintenancePlan) -> CompiledJoin:
        """Fetch (or create) the select-independent compiled join.

        The cluster keeps one :class:`CompiledJoin` per join clause per
        catalog version, so views that differ only in their projection
        list share the same layout, probe-key positions, and filter
        closures instead of compiling duplicates — and the shared
        multi-view path can group views by comparing ``compiled.join``
        identity.  Stale versions are pruned on miss, mirroring
        :meth:`_prune_stale` (the key carries the version in position 0).
        """
        cache = getattr(self.cluster, "_compiled_join_cache", None)
        if cache is None:
            return compile_join(plan)
        version = self.cluster.catalog.version
        key = (version, plan.updated, plan.updated_schema, plan.hops)
        join = cache.get(key)
        if join is None:
            stale = [entry for entry in cache if entry[0] != version]
            for entry in stale:
                del cache[entry]
            join = compile_join(plan)
            cache[key] = join
        return join

    def _plan_cache_event(self, obs, updated: str, kind: str) -> None:  # repro: obs-guarded=both call sites test obs.enabled first
        """Push one live plan-cache counter sample (traced runs only)."""
        obs.metrics.counter(
            "repro_plan_cache_events_total",
            "Compiled-plan cache hits and misses per view and relation",
        ).inc(view=self.bound.definition.name, relation=updated, kind=kind)

    def alternatives(self, updated: str) -> List[Tuple[MaintenancePlan, float]]:
        """Every legal plan with its estimated cost, cheapest first —
        the paper's 'four possible ways' made inspectable."""
        priced = [
            (self._build_plan(updated, order), self._price_order(order))
            for order in enumerate_orders(self.bound, updated)
        ]
        priced.sort(key=lambda pair: pair[1])
        return priced

    def _choose_plan(self, updated: str) -> MaintenancePlan:
        orders = enumerate_orders(self.bound, updated)
        best = min(orders, key=self._price_order)
        return self._build_plan(updated, best)

    def _build_plan(
        self, updated: str, order: Tuple[HopChoice, ...]
    ) -> MaintenancePlan:
        hops = []
        for choice in order:
            column = choice.probe.column_of(choice.partner)
            left_relation, left_column = choice.probe.other(choice.partner)
            access = self.resolve_access(choice.partner, column)
            hops.append(
                Hop(
                    partner=choice.partner,
                    left_relation=left_relation,
                    left_column=left_column,
                    right_column=column,
                    access=access,
                    contributed=self._contributed_schema(access),
                    extra_filters=choice.extra_filters,
                )
            )
        return MaintenancePlan(
            view=self.bound.definition.name,
            updated=updated,
            updated_schema=self.bound.schemas[updated],
            hops=tuple(hops),
        )

    def _contributed_schema(self, access: AccessPath):
        if isinstance(access, AuxiliaryAccess):
            return self.cluster.catalog.auxiliary(access.ar_name).schema
        return self.cluster.catalog.relation(access.relation).schema

    # ------------------------------------------------------- access paths

    def resolve_access(self, partner: str, column: str) -> AccessPath:
        """The structure a hop probes, per the paper's per-method rules.

        Every method gets the free ride when the partner is already
        partitioned on the join attribute ("the auxiliary relation for that
        base relation is unnecessary"); otherwise the method dictates the
        structure.
        """
        info = self.cluster.catalog.relation(partner)
        if info.is_partitioned_on(column):
            if column not in info.indexes:
                raise PlanningError(
                    f"{partner!r} needs a local index on its partitioning "
                    f"column {column!r} to be probed"
                )
            return BaseAccess(
                relation=partner,
                column=column,
                broadcast=False,
                clustered=info.indexes[column],
            )
        if self.method is MaintenanceMethod.NAIVE:
            if column not in info.indexes:
                raise PlanningError(
                    f"naive maintenance probes {partner}.{column} at every "
                    "node and needs a local index there"
                )
            return BaseAccess(
                relation=partner,
                column=column,
                broadcast=True,
                clustered=info.indexes[column],
            )
        if self.method is MaintenanceMethod.HYBRID:
            return self._resolve_hybrid(partner, column, info)
        if self.method is MaintenanceMethod.AUXILIARY:
            aux = self.cluster.catalog.find_auxiliary(partner, column)
            if aux is None:
                raise PlanningError(
                    f"no auxiliary relation of {partner!r} partitioned on "
                    f"{column!r}; create one or define the view through "
                    "define_join_view, which provisions it"
                )
            return AuxiliaryAccess(ar_name=aux.name, relation=partner, column=column)
        gi = self.cluster.catalog.find_global_index(partner, column)
        if gi is None:
            raise PlanningError(
                f"no global index on {partner}.{column}; create one or "
                "define the view through define_join_view, which provisions it"
            )
        return GlobalIndexAccess(
            gi_name=gi.name,
            relation=partner,
            column=column,
            distributed_clustered=gi.distributed_clustered,
        )

    def _resolve_hybrid(self, partner: str, column: str, info) -> AccessPath:
        """Hybrid preference order: AR > GI > broadcast base (paper §4's
        per-relation mixing; co-located base was handled by the caller)."""
        aux = self.cluster.catalog.find_auxiliary(partner, column)
        if aux is not None:
            return AuxiliaryAccess(ar_name=aux.name, relation=partner, column=column)
        gi = self.cluster.catalog.find_global_index(partner, column)
        if gi is not None:
            return GlobalIndexAccess(
                gi_name=gi.name,
                relation=partner,
                column=column,
                distributed_clustered=gi.distributed_clustered,
            )
        if column not in info.indexes:
            raise PlanningError(
                f"hybrid maintenance has no structure on {partner}.{column} "
                "and no local index to fall back to; provision one"
            )
        return BaseAccess(
            relation=partner,
            column=column,
            broadcast=True,
            clustered=info.indexes[column],
        )

    # ------------------------------------------------------------ pricing

    def _price_order(self, order: Tuple[HopChoice, ...]) -> float:
        """Estimated maintenance cost of one hop order, per delta tuple."""
        cardinality = 1.0
        total = 0.0
        for choice in order:
            column = choice.probe.column_of(choice.partner)
            access = self.resolve_access(choice.partner, column)
            fanout = self.statistics.fanout(choice.partner, column)
            total += cardinality * self._probe_unit_cost(access, fanout)
            cardinality *= fanout
            for condition in choice.extra_filters:
                distinct = max(
                    1,
                    self.statistics.for_relation(choice.partner).distinct.get(
                        condition.column_of(choice.partner), 1
                    ),
                )
                cardinality /= distinct
        return total

    def _probe_unit_cost(self, access: AccessPath, fanout: float) -> float:
        """Weighted cost of probing once through ``access`` (paper §3.1.1)."""
        weights: CostParameters = self.cluster.ledger.params
        num_nodes = self.cluster.num_nodes
        send, search, fetch = weights.send_ios, weights.search_ios, weights.fetch_ios
        if isinstance(access, BaseAccess):
            if access.broadcast:
                probes = num_nodes * (send + search)
                return probes + (0.0 if access.clustered else fanout * fetch)
            return send + search + (0.0 if access.clustered else fanout * fetch)
        if isinstance(access, AuxiliaryAccess):
            return send + search  # clustered: matches ride the landing page
        spread = min(fanout, float(num_nodes))
        fetches = spread * fetch if access.distributed_clustered else fanout * fetch
        return send + search + 2 * spread * send + fetches

    # ----------------------------------------------------- join strategy

    def prefer_sort_merge(self, hop: Hop, state_size: int) -> bool:
        """The paper's regime choice: per-tuple index probes while the delta
        is small, one scan/sort of the partner once the per-tuple work would
        exceed it (§3.1.2)."""
        inl = self._inl_response_estimate(hop, state_size)
        sm = self._sort_merge_response_estimate(hop)
        return sm < inl

    def _inl_response_estimate(self, hop: Hop, state_size: int) -> float:
        num_nodes = self.cluster.num_nodes
        access = hop.access
        fanout = self.statistics.fanout(access.relation, hop.right_column)
        per_node_share = -(-state_size // num_nodes)  # ceil
        if isinstance(access, BaseAccess) and access.broadcast:
            fetch_share = 0.0 if access.clustered else fanout / num_nodes
            return state_size * (1.0 + fetch_share)
        if isinstance(access, (AuxiliaryAccess, BaseAccess)):
            clustered = (
                access.clustered if isinstance(access, BaseAccess) else True
            )
            return per_node_share * (1.0 + (0.0 if clustered else fanout))
        spread = min(fanout, float(num_nodes))
        fetches = spread if access.distributed_clustered else fanout
        return per_node_share * (1.0 + fetches)

    def _sort_merge_response_estimate(self, hop: Hop) -> float:
        access = hop.access
        fragment_name = access.fragment_name
        pages = max(
            (
                node.fragment_pages(fragment_name)
                for node in self.cluster.nodes
                if node.has_fragment(fragment_name)
            ),
            default=0,
        )
        layout = self.cluster.layout
        if isinstance(access, AuxiliaryAccess):
            return layout.scan_cost_pages(pages)
        clustered = (
            access.clustered
            if isinstance(access, BaseAccess)
            else access.distributed_clustered
        )
        if clustered:
            return layout.scan_cost_pages(pages)
        return layout.sort_cost_pages(pages)


# ======================================================== method advising


@dataclass(frozen=True)
class MethodRecommendation:
    """The advisor's verdict for one view under one workload profile."""

    method: MaintenanceMethod
    predicted_response_ios: float
    storage_overhead_tuples: int
    per_method_response: Dict[str, float]
    per_method_storage: Dict[str, int]
    reason: str


class MethodAdvisor:
    """Chooses a maintenance method from the paper's analytical model.

    The conclusion names the two decisive environment factors: "the update
    activity on base relations and the amount of available storage space".
    The advisor prices all five model variants for the expected update size
    and discards methods whose extra structures exceed the storage budget.
    """

    def __init__(self, cluster: "Cluster", bound: BoundView) -> None:
        self.cluster = cluster
        self.bound = bound
        self.statistics = StatisticsCache(cluster)

    def storage_overhead(self, method: MaintenanceMethod) -> int:
        """Extra tuples/entries the method needs for this view (naive: 0;
        GI: one entry per base tuple per GI; AR: a trimmed copy per AR)."""
        if method is MaintenanceMethod.NAIVE:
            return 0
        total = 0
        for relation in self.bound.definition.relations:
            info = self.cluster.catalog.relation(relation)
            for column in self.bound.definition.join_columns_of(relation):
                if info.is_partitioned_on(column):
                    continue
                total += info.row_count
        return total

    def recommend(
        self,
        update_size: int,
        updated_relation: Optional[str] = None,
        storage_budget_tuples: Optional[int] = None,
        clustered_base_indexes: bool = False,
    ) -> MethodRecommendation:
        """Pick the best method for transactions of ``update_size`` tuples.

        ``clustered_base_indexes`` mirrors the paper's scenario split: when
        base fragments are clustered on the join attribute, the naive method
        with sort-merge becomes competitive for very large updates
        (Figure 10); otherwise it never is.
        """
        from ..model import MethodVariant, ModelParameters, response_time_ios

        updated = updated_relation or self.bound.definition.relations[0]
        partners = [r for r in self.bound.definition.relations if r != updated]
        # Model parameters against the largest partner, the conservative pick.
        partner = max(
            partners, key=lambda name: self.cluster.catalog.relation(name).row_count
        )
        condition = next(
            c for c in self.bound.definition.conditions_touching(updated)
            if c.other(updated)[0] in partners
        )
        partner_rel, partner_col = condition.other(updated)
        fanout = max(1.0, self.statistics.fanout(partner_rel, partner_col))
        params = ModelParameters(
            num_nodes=self.cluster.num_nodes,
            fanout=fanout,
            partner_pages=max(1, self.cluster.relation_pages(partner_rel)),
            memory_pages=self.cluster.layout.memory_pages,
            costs=self.cluster.ledger.params,
        )
        variants = {
            MaintenanceMethod.NAIVE: (
                MethodVariant.NAIVE_CLUSTERED
                if clustered_base_indexes
                else MethodVariant.NAIVE_NONCLUSTERED
            ),
            MaintenanceMethod.AUXILIARY: MethodVariant.AUXILIARY,
            MaintenanceMethod.GLOBAL_INDEX: (
                MethodVariant.GI_CLUSTERED
                if clustered_base_indexes
                else MethodVariant.GI_NONCLUSTERED
            ),
        }
        per_response: Dict[str, float] = {}
        per_storage: Dict[str, int] = {}
        feasible: List[Tuple[float, MaintenanceMethod]] = []
        for method, variant in variants.items():
            response = response_time_ios(variant, update_size, params)
            storage = self.storage_overhead(method)
            per_response[method.value] = response
            per_storage[method.value] = storage
            if storage_budget_tuples is None or storage <= storage_budget_tuples:
                feasible.append((response, method))
        if not feasible:
            raise PlanningError(
                "no maintenance method fits the storage budget "
                f"({storage_budget_tuples} tuples)"
            )
        best_response, best_method = min(feasible, key=lambda pair: pair[0])
        reason = self._explain(best_method, update_size, per_response, per_storage)
        return MethodRecommendation(
            method=best_method,
            predicted_response_ios=best_response,
            storage_overhead_tuples=per_storage[best_method.value],
            per_method_response=per_response,
            per_method_storage=per_storage,
            reason=reason,
        )

    @staticmethod
    def _explain(
        method: MaintenanceMethod,
        update_size: int,
        responses: Dict[str, float],
        storage: Dict[str, int],
    ) -> str:
        ordered = sorted(responses.items(), key=lambda item: item[1])
        ranking = ", ".join(f"{name}={ios:,.0f} I/Os" for name, ios in ordered)
        return (
            f"for {update_size}-tuple transactions the predicted response "
            f"times are {ranking}; {method.value} wins with "
            f"{storage[method.value]:,} tuples of extra storage"
        )
