"""Shared multi-view maintenance: one delta-propagation DAG per statement.

The paper maintains a *single* join view; a cluster here registers many.
Maintaining each independently makes a statement over a base relation with
V overlapping views pay V partition passes over the same delta, V probe
rounds over the same join keys, and V network fan-outs.  Following the
multi-query-optimization observation (Mistry et al., PAPERS.md) that the
real multi-view win is sharing common subexpressions and transient delta
results, this module turns the per-view loop into a DAG:

- **group** — registered eager maintainers are grouped by their compiled
  join (strategy + :class:`~repro.core.multiway.CompiledJoin` identity;
  views differing only in projection share one compiled join, see
  ``optimizer._shared_join``);
- **join once per group** — the group's first member runs the partition
  pass and probe rounds exactly as an independent view would (PR 2's
  batched engine, including its per-statement probe memo), billed once;
- **fan out** — every member consumes the shared intermediates through its
  own ``_consume_join``: plain views project with their own select list,
  aggregate views fold group contributions.  Deferred wrappers queue the
  delta as before (their inner maintainer shares on refresh only with
  itself, so they pass through);
- **cross-group memo** — a statement-scoped :class:`SharedMaintenanceContext`
  lets *different* groups that probe the same (fragment, column, node, key)
  slot — or the same GI key — reuse the answer without re-executing or
  re-charging it.

Charge attribution (DESIGN.md § 13): within one statement, each distinct
probe is billed exactly once, by the first group that executes it; later
groups and later members ride free.  Per-view VIEW-tagged writes stay per
view.  Single-view statements never enter this path, so their ledgers are
bit-identical to independent maintenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..storage.schema import Row
from .aggregates import AggregateViewMaintainer
from .delta import Delta
from .maintenance import JoinViewMaintainer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.cluster import Cluster


class SharedMaintenanceContext:
    """Statement-scoped memo of probe answers shared across view groups.

    Installed on the cluster as ``_shared_ctx`` for the duration of one
    shared multi-view statement; the batched INL hops consult it before
    touching storage.  Slots are keyed on the *physical* read — fragment,
    column, node, key — so any two hops that would read the same index
    entry share, regardless of which view (or hop shape: co-located and
    broadcast probes share one namespace) asked first.
    """

    __slots__ = ("_probes", "_gi", "probes_executed", "probes_shared")

    def __init__(self) -> None:
        self._probes: Dict[Tuple[str, str, int, object], List[Row]] = {}
        self._gi: Dict[Tuple[str, object], List[Tuple[int, List[Row]]]] = {}
        #: distinct probes actually executed (and billed) this statement
        self.probes_executed = 0
        #: probe answers served from the memo (work and charges avoided)
        self.probes_shared = 0

    def lookup(
        self, fragment: str, column: str, node: int, key: object
    ) -> Optional[List[Row]]:
        rows = self._probes.get((fragment, column, node, key))
        if rows is not None:
            self.probes_shared += 1
        return rows

    def store(
        self, fragment: str, column: str, node: int, key: object, rows: List[Row]
    ) -> None:
        self._probes[(fragment, column, node, key)] = rows
        self.probes_executed += 1

    def lookup_gi(
        self, gi_name: str, key: object
    ) -> Optional[List[Tuple[int, List[Row]]]]:
        fetched = self._gi.get((gi_name, key))
        if fetched is not None:
            self.probes_shared += 1
        return fetched

    def store_gi(
        self, gi_name: str, key: object, fetched: List[Tuple[int, List[Row]]]
    ) -> None:
        self._gi[(gi_name, key)] = fetched
        self.probes_executed += 1


@dataclass
class MultiViewStats:
    """Counters proving (or disproving) that sharing happened.

    ``partition_passes`` counts group executions: with V same-clause views
    the shared path runs ONE partition pass per statement where the
    independent loop runs V.  ``probes_deduped`` counts probe executions
    avoided — (members - 1) per probe the group representative ran, plus
    every cross-group memo hit.
    """

    statements: int = 0
    partition_passes: int = 0
    probes_executed: int = 0
    probes_deduped: int = 0
    last_partition_passes: int = 0
    last_probes_deduped: int = 0

    @property
    def partition_passes_per_statement(self) -> float:
        if not self.statements:
            return 0.0
        return self.partition_passes / self.statements

    def as_dict(self) -> Dict[str, object]:
        return {
            "statements": self.statements,
            "partition_passes": self.partition_passes,
            "partition_passes_per_statement": self.partition_passes_per_statement,
            "probes_executed": self.probes_executed,
            "probes_deduped": self.probes_deduped,
        }


def _shareable(maintainer: object) -> bool:
    """Whether a maintainer may join a shared group.

    Exact types only: a plain eager join maintainer, or the aggregate
    subclass (which keeps the base join computation and overrides only
    ``_consume_join``).  Anything else — deferred wrappers, unknown
    subclasses — runs its own ``apply`` untouched.
    """
    return type(maintainer) is JoinViewMaintainer or (
        type(maintainer) is AggregateViewMaintainer
    )


def maintain_views(cluster: "Cluster", delta: Delta) -> None:
    """Maintain every view registered on ``delta.relation``.

    The shared DAG engages only when it can pay off *and* stay honest:
    at least two views, the batched fast path eligible (no faults, no
    open undo scope — the same gate as ``JoinViewMaintainer._batch_mode``),
    and sharing enabled on the cluster.  Otherwise this is exactly the
    historical per-view loop, so single-view clusters (and every
    fault/undo path) keep bit-identical ledgers, network counters, and
    fragment contents.
    """
    views = cluster.catalog.views_on(delta.relation)
    if (
        len(views) < 2
        or delta.is_empty
        or not cluster.shared_maintenance
        or not cluster._bulk_ok()
    ):
        for view in views:
            view.maintainer.apply(delta)
        return

    # One partition pass + probe round per distinct compiled join.  The
    # grouping key is the shared CompiledJoin *instance* (one per clause
    # per catalog version, courtesy of the cluster-level compiled-join
    # cache) plus the join strategy, so a DDL mid-stream rebuilds the
    # groups automatically on the next statement.
    groups: Dict[Tuple, List[Tuple[JoinViewMaintainer, object]]] = {}
    passthrough = []
    for view in views:
        maintainer = view.maintainer
        if _shareable(maintainer):
            compiled = maintainer.planner.compiled_for(delta.relation)
            key = (maintainer.strategy, compiled.join)
            groups.setdefault(key, []).append((maintainer, compiled))
        else:
            passthrough.append(maintainer)

    if all(len(members) < 2 for members in groups.values()):
        # Nothing shares: run the historical loop verbatim (in particular,
        # no statement-scoped memo, so charges are untouched).
        for view in views:
            view.maintainer.apply(delta)
        return

    stats = cluster.multi_view_stats
    obs = cluster.obs
    context = SharedMaintenanceContext()
    statement_deduped = 0
    cluster._shared_ctx = context
    try:
        for members in groups.values():
            representative, rep_compiled = members[0]
            with obs.span(
                "maintain_shared",
                views=",".join(m.view_info.name for m, _ in members),
                method=representative.method.value,
                relation=delta.relation,
                group_size=len(members),
            ):
                executed_before = context.probes_executed
                view_deletes = representative._compute_join(
                    rep_compiled, delta.deletes
                )
                view_inserts = representative._compute_join(
                    rep_compiled, delta.inserts
                )
                executed = context.probes_executed - executed_before
                for maintainer, compiled in members:
                    maintainer._consume_join(compiled, view_inserts, view_deletes)
            stats.partition_passes += 1
            statement_deduped += executed * (len(members) - 1)
    finally:
        cluster._shared_ctx = None
    for maintainer in passthrough:
        maintainer.apply(delta)
    statement_deduped += context.probes_shared
    stats.statements += 1
    stats.probes_executed += context.probes_executed
    stats.probes_deduped += statement_deduped
    stats.last_partition_passes = len(groups)
    stats.last_probes_deduped = statement_deduped
