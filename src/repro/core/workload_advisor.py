"""Workload-level advice: is the view worth materializing at all?

The paper's method chooser (§4) assumes the view exists and picks how to
maintain it.  One level up sits the question every warehouse DBA actually
faces: given a mixed workload — so many queries, so many update
transactions per period — does the query acceleration pay for the
maintenance at all, and under which method?  This module prices exactly
that trade, combining the query engine's plan estimates with the
analytical model's per-method maintenance TW.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..model import (
    JoinRegime,
    MethodVariant,
    ModelParameters,
    response_time_ios,
    total_workload_ios,
)
from .maintenance import MaintenanceMethod
from .statistics import StatisticsCache
from .view import BoundView


@dataclass(frozen=True)
class WorkloadProfile:
    """Activity per accounting period (an hour, a day — any fixed window).

    ``full_queries`` read the whole join result; ``pinned_lookups`` pin the
    view's partitioning attribute with an equality predicate;
    ``update_transactions`` each change ``tuples_per_update`` base tuples.
    """

    full_queries: float = 0.0
    pinned_lookups: float = 0.0
    update_transactions: float = 0.0
    tuples_per_update: int = 1

    def __post_init__(self) -> None:
        if min(self.full_queries, self.pinned_lookups, self.update_transactions) < 0:
            raise ValueError("workload rates must be non-negative")
        if self.tuples_per_update < 1:
            raise ValueError("tuples_per_update must be >= 1")


@dataclass(frozen=True)
class WorkloadVerdict:
    """The advisor's answer for one view under one profile."""

    materialize: bool
    method: Optional[MaintenanceMethod]
    net_benefit_ios: float
    query_cost_without_view: float
    query_cost_with_view: float
    maintenance_cost: float
    per_method_maintenance: Dict[str, float] = field(default_factory=dict)

    def explain(self) -> str:
        if not self.materialize:
            return (
                f"do not materialize: maintenance ({self.maintenance_cost:,.0f} "
                f"I/Os/period under the best method) exceeds the query "
                f"saving ({self.query_cost_without_view - self.query_cost_with_view:,.0f})"
            )
        assert self.method is not None
        return (
            f"materialize with the {self.method.value} method: queries drop "
            f"from {self.query_cost_without_view:,.0f} to "
            f"{self.query_cost_with_view:,.0f} I/Os/period, maintenance adds "
            f"{self.maintenance_cost:,.0f}, net saving "
            f"{self.net_benefit_ios:,.0f}"
        )


class WorkloadAdvisor:
    """Prices a (view, workload) pair end to end."""

    def __init__(
        self,
        cluster,
        bound: BoundView,
        clustered_base_indexes: bool = False,
    ) -> None:
        self.cluster = cluster
        self.bound = bound
        self.clustered_base_indexes = clustered_base_indexes
        self.statistics = StatisticsCache(cluster)

    # ------------------------------------------------------- cost pieces

    def base_join_cost(self) -> float:
        """Pages read to answer the join from the base relations once."""
        return float(
            sum(
                max(1, self.cluster.relation_pages(relation))
                for relation in self.bound.definition.relations
            )
        )

    def view_scan_cost(self) -> float:
        """Pages of the view result, estimated from join cardinality."""
        contents_rows = 1.0
        first = self.bound.definition.relations[0]
        contents_rows = float(
            max(1, self.statistics.for_relation(first).rows)
        )
        for condition in self.bound.definition.conditions:
            partner, column = condition.right, condition.right_column
            contents_rows *= max(
                1.0, self.statistics.fanout(partner, column)
            )
        return max(1.0, contents_rows / self.cluster.layout.tuples_per_page)

    def pinned_lookup_cost(self) -> float:
        """One SEARCH at one node (plus the landing page of matches)."""
        return 2.0

    def maintenance_cost_per_txn(self, method: MaintenanceMethod, tuples: int) -> float:
        """Model TW of one update transaction under ``method``.

        Uses total workload (the throughput currency), with the regime
        chosen by cost as in Figure 11.
        """
        params = self._model_params()
        variant = {
            MaintenanceMethod.NAIVE: (
                MethodVariant.NAIVE_CLUSTERED
                if self.clustered_base_indexes
                else MethodVariant.NAIVE_NONCLUSTERED
            ),
            MaintenanceMethod.AUXILIARY: MethodVariant.AUXILIARY,
            MaintenanceMethod.GLOBAL_INDEX: (
                MethodVariant.GI_CLUSTERED
                if self.clustered_base_indexes
                else MethodVariant.GI_NONCLUSTERED
            ),
        }[method]
        per_tuple_tw = total_workload_ios(variant, params)
        inl_total = tuples * per_tuple_tw
        # Sort-merge alternative: every node passes over its fragment once.
        sort_merge_total = params.num_nodes * response_time_ios(
            variant, tuples, params, JoinRegime.SORT_MERGE
        )
        return min(inl_total, sort_merge_total)

    def _model_params(self) -> ModelParameters:
        definition = self.bound.definition
        partner = max(
            definition.relations[1:] or definition.relations,
            key=lambda name: self.cluster.catalog.relation(name).row_count,
        )
        condition = definition.conditions_touching(partner)[0]
        column = condition.column_of(partner)
        return ModelParameters(
            num_nodes=self.cluster.num_nodes,
            fanout=max(1.0, self.statistics.fanout(partner, column)),
            partner_pages=max(1, self.cluster.relation_pages(partner)),
            memory_pages=self.cluster.layout.memory_pages,
            costs=self.cluster.ledger.params,
        )

    # ------------------------------------------------------------ verdict

    def advise(self, profile: WorkloadProfile) -> WorkloadVerdict:
        base = self.base_join_cost()
        scan = self.view_scan_cost()
        probe = self.pinned_lookup_cost()
        query_without = (profile.full_queries + profile.pinned_lookups) * base
        query_with = profile.full_queries * scan + profile.pinned_lookups * probe
        per_method = {
            method.value: profile.update_transactions
            * self.maintenance_cost_per_txn(method, profile.tuples_per_update)
            for method in (
                MaintenanceMethod.NAIVE,
                MaintenanceMethod.AUXILIARY,
                MaintenanceMethod.GLOBAL_INDEX,
            )
        }
        best_name = min(per_method, key=per_method.get)
        maintenance = per_method[best_name]
        net = query_without - query_with - maintenance
        if net <= 0:
            return WorkloadVerdict(
                materialize=False,
                method=None,
                net_benefit_ios=net,
                query_cost_without_view=query_without,
                query_cost_with_view=query_with,
                maintenance_cost=maintenance,
                per_method_maintenance=per_method,
            )
        return WorkloadVerdict(
            materialize=True,
            method=MaintenanceMethod(best_name),
            net_benefit_ios=net,
            query_cost_without_view=query_without,
            query_cost_with_view=query_with,
            maintenance_cost=maintenance,
            per_method_maintenance=per_method,
        )


# ---------------------------------------------------- structure sharing


@dataclass(frozen=True)
class SharingProposal:
    """One (relation, column) probe slot that several views demand.

    Views whose join clauses overlap on a slot the relation is *not*
    partitioned on each need an auxiliary structure there; provisioning
    one per view stores ``len(views)`` copies of the relation's rows where
    one shared copy serves them all.  ``structure`` names an existing
    AR/GI already covering the slot (``kind`` says which); ``adopters``
    are the demanding views not yet registered on it.
    """

    relation: str
    column: str
    views: Tuple[str, ...]
    kind: str  # "auxiliary" | "global_index" | "new"
    structure: Optional[str]
    adopters: Tuple[str, ...]
    rows_saved: int

    def explain(self) -> str:
        slot = f"{self.relation}.{self.column}"
        if self.structure is None:
            return (
                f"provision one shared structure on {slot} for views "
                f"{', '.join(self.views)}: saves ~{self.rows_saved:,} "
                f"stored rows vs one copy per view"
            )
        return (
            f"share {self.kind} {self.structure!r} on {slot} across views "
            f"{', '.join(self.views)}"
            + (
                f" (adopt: {', '.join(self.adopters)})"
                if self.adopters
                else " (already shared)"
            )
        )


def propose_structure_sharing(cluster) -> List[SharingProposal]:
    """Which auxiliary structures views with overlapping join clauses
    should share.

    Walks every registered view's join conditions and collects, per
    (relation, column) side that the relation is *not* hash-partitioned
    on (the partitioned side is the free ride every method exploits), the
    set of views demanding a probe structure there.  Slots demanded by
    two or more views become proposals, largest row saving first — the
    multi-view analogue of the paper's per-view provisioning decision.
    """
    catalog = cluster.catalog
    demands: Dict[Tuple[str, str], List[str]] = {}
    for view in catalog.views.values():
        definition = view.definition
        for condition in definition.conditions:
            for relation, column in (
                (condition.left, condition.left_column),
                (condition.right, condition.right_column),
            ):
                info = catalog.relations.get(relation)
                if info is None or info.is_partitioned_on(column):
                    continue
                names = demands.setdefault((relation, column), [])
                if view.name not in names:
                    names.append(view.name)
    proposals: List[SharingProposal] = []
    for (relation, column), names in demands.items():
        if len(names) < 2:
            continue
        ar = catalog.find_auxiliary(relation, column)
        gi = catalog.find_global_index(relation, column)
        if ar is not None:
            kind, structure, serves = "auxiliary", ar.name, ar.serves_views
        elif gi is not None:
            kind, structure, serves = "global_index", gi.name, gi.serves_views
        else:
            kind, structure, serves = "new", None, []
        adopters = tuple(name for name in names if name not in serves)
        rows_saved = catalog.relation(relation).row_count * (len(names) - 1)
        proposals.append(
            SharingProposal(
                relation=relation,
                column=column,
                views=tuple(names),
                kind=kind,
                structure=structure,
                adopters=adopters,
                rows_saved=rows_saved,
            )
        )
    proposals.sort(key=lambda p: (-p.rows_saved, p.relation, p.column))
    return proposals
