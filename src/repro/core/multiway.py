"""Maintenance plans for views over two or more base relations.

Paper §2.2: when base relation ``R_i`` is updated, its delta must be joined
with every other relation of the view, one *hop* at a time, where each hop
probes either the partner's base fragments (naive, or when the partner is
already partitioned on the join attribute), an auxiliary relation, or a
global index.  With more than two relations "there are many choices as to
how to use the auxiliary relations, and an optimization problem arises" —
this module enumerates the legal hop orders; :mod:`repro.core.optimizer`
prices them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from ..storage.schema import Row, Schema
from .view import BoundView, JoinCondition, ViewDefinitionError


@dataclass(frozen=True)
class BaseAccess:
    """Probe the partner's base fragments through a local index.

    ``broadcast=True`` is the naive all-node probe; ``broadcast=False``
    means the partner is hash-partitioned on the probed column, so the
    single owning node is probed (the free ride every method exploits).
    """

    relation: str
    column: str
    broadcast: bool
    clustered: bool

    @property
    def fragment_name(self) -> str:
        return self.relation

    def describe(self) -> str:
        kind = "broadcast" if self.broadcast else "co-located"
        cl = "clustered" if self.clustered else "non-clustered"
        return f"base[{self.relation}.{self.column}, {kind}, {cl}]"


@dataclass(frozen=True)
class AuxiliaryAccess:
    """Probe an auxiliary relation AR_partner partitioned on the join column."""

    ar_name: str
    relation: str
    column: str

    @property
    def fragment_name(self) -> str:
        return self.ar_name

    def describe(self) -> str:
        return f"aux[{self.ar_name} on {self.relation}.{self.column}]"


@dataclass(frozen=True)
class GlobalIndexAccess:
    """Probe a global index GI_partner, then fetch at the K owning nodes."""

    gi_name: str
    relation: str
    column: str
    distributed_clustered: bool

    @property
    def fragment_name(self) -> str:
        return self.relation

    def describe(self) -> str:
        cl = "distributed clustered" if self.distributed_clustered else "distributed non-clustered"
        return f"gi[{self.gi_name} on {self.relation}.{self.column}, {cl}]"


AccessPath = Union[BaseAccess, AuxiliaryAccess, GlobalIndexAccess]


@dataclass(frozen=True)
class Hop:
    """One join step: probe ``partner`` with the value of
    ``left_relation.left_column`` taken from the running intermediate.

    ``extra_filters`` are additional join conditions between the partner and
    already-joined relations (they arise in cyclic join graphs, e.g. the
    paper's triangle A⋈B⋈C⋈A example, where the closing hop connects on two
    edges: one is probed, the other filtered).
    """

    partner: str
    left_relation: str
    left_column: str
    right_column: str
    access: AccessPath
    contributed: Schema  # schema of the rows this hop splices in
    extra_filters: Tuple[JoinCondition, ...] = ()

    def describe(self) -> str:
        return (
            f"{self.left_relation}.{self.left_column} -> "
            f"{self.partner}.{self.right_column} via {self.access.describe()}"
        )


@dataclass(frozen=True)
class MaintenancePlan:
    """The full recipe for propagating one base relation's delta."""

    view: str
    updated: str
    updated_schema: Schema
    hops: Tuple[Hop, ...]

    @property
    def join_order(self) -> Tuple[str, ...]:
        return (self.updated,) + tuple(hop.partner for hop in self.hops)

    def describe(self) -> str:
        lines = [f"plan for Δ{self.updated} -> view {self.view}:"]
        lines.extend(f"  {i + 1}. {hop.describe()}" for i, hop in enumerate(self.hops))
        return "\n".join(lines)


@dataclass(frozen=True)
class HopChoice:
    """An access-path-free hop candidate produced by order enumeration."""

    partner: str
    probe: JoinCondition
    extra_filters: Tuple[JoinCondition, ...]


def enumerate_orders(
    bound: BoundView, updated: str
) -> List[Tuple[HopChoice, ...]]:
    """All hop orders for a delta on ``updated``.

    Each order covers every other relation exactly once, and each hop's
    partner is connected by at least one join condition to the relations
    already covered.  For the paper's triangle example this yields exactly
    the four alternatives listed in §2.2.
    """
    definition = bound.definition
    if updated not in definition.relations:
        raise ViewDefinitionError(
            f"{updated!r} is not a base relation of view {definition.name!r}"
        )
    orders: List[Tuple[HopChoice, ...]] = []

    def extend(covered: Tuple[str, ...], hops: Tuple[HopChoice, ...]) -> None:
        if len(covered) == len(definition.relations):
            orders.append(hops)
            return
        for partner in definition.relations:
            if partner in covered:
                continue
            connecting = [
                condition
                for condition in definition.conditions
                if condition.touches(partner) and condition.other(partner)[0] in covered
            ]
            if not connecting:
                continue
            # Any connecting condition may serve as the probe; the rest
            # become filters.  Distinct probe choices are distinct plans.
            for probe_index, probe in enumerate(connecting):
                extras = tuple(
                    c for i, c in enumerate(connecting) if i != probe_index
                )
                extend(
                    covered + (partner,),
                    hops + (HopChoice(partner, probe, extras),),
                )

    extend((updated,), ())
    return orders


@dataclass(frozen=True)
class CompiledHop:
    """One hop with its per-statement lookups resolved once.

    ``key_position`` is the flat position (in the running intermediate
    tuple) of the value that probes the partner; ``filters`` are the
    pre-resolved (left position, partner position) pairs of the hop's extra
    join conditions.  Both used to be recomputed on every statement; the
    batched execution engine caches them per (view, relation, catalog
    version).
    """

    hop: Hop
    key_position: int
    filters: Tuple[Tuple[int, int], ...]


class JoinLayout:
    """Flat layout of a plan's concatenated intermediate tuples.

    Everything here is derived from the plan's join shape alone — the
    updated relation, hop order, and each hop's contributed schema — never
    from any view's projection list.  Views that differ only in their
    select list therefore share one layout (and one :class:`CompiledJoin`)
    instead of compiling identical position tables per view.
    """

    __slots__ = ("plan", "total_arity", "_offsets", "_schemas")

    def __init__(self, plan: MaintenancePlan) -> None:
        self.plan = plan
        self._offsets: Dict[str, int] = {}
        self._schemas: Dict[str, Schema] = {}
        offset = 0
        for relation, schema in self._contributions(plan):
            self._offsets[relation] = offset
            self._schemas[relation] = schema
            offset += schema.arity
        self.total_arity = offset

    @staticmethod
    def _contributions(plan: MaintenancePlan):
        yield plan.updated, plan.updated_schema
        for hop in plan.hops:
            yield hop.partner, hop.contributed

    def position(self, relation: str, column: str) -> int:
        """Flat position of ``relation.column`` in the intermediate tuple."""
        try:
            schema = self._schemas[relation]
        except KeyError:
            raise ViewDefinitionError(
                f"plan for {self.plan.view!r} does not join {relation!r}"
            ) from None
        return self._offsets[relation] + schema.index_of(column)

    def prefix_arity(self, upto_hop: int) -> int:
        """Arity of the intermediate before hop index ``upto_hop`` runs."""
        arity = self.plan.updated_schema.arity
        for hop in self.plan.hops[:upto_hop]:
            arity += hop.contributed.arity
        return arity


@dataclass(frozen=True, eq=False)
class CompiledJoin:
    """The select-independent half of a compiled plan.

    Keyed on the join clause — ``(updated, updated_schema, hops)`` — so
    every view whose plan shares the clause shares this object (identity
    comparison is intentional: the cluster-level cache guarantees one
    instance per clause per catalog version, and the shared-maintenance
    grouper uses the instance itself as the group key).
    """

    plan: MaintenancePlan
    layout: JoinLayout
    hops: Tuple[CompiledHop, ...]

    @property
    def clause_key(self) -> Tuple:
        """Hashable identity of the join clause this compilation serves."""
        return (self.plan.updated, self.plan.updated_schema, self.plan.hops)


@dataclass(frozen=True)
class CompiledPlan:
    """A maintenance plan plus every derived artifact execution needs.

    Cached by :meth:`repro.core.optimizer.MaintenancePlanner.compiled_for`
    keyed on the catalog version (invalidation on any DDL change), so the
    per-statement cost of planning drops to one dict lookup.  The heavy
    half (``join``) is shared between views with the same join clause; only
    the thin :class:`OutputMapper` (select positions) is per view.
    """

    plan: MaintenancePlan
    mapper: "OutputMapper"
    hops: Tuple[CompiledHop, ...]
    join: CompiledJoin


def compile_join(plan: MaintenancePlan) -> CompiledJoin:
    """Resolve the layout, probe-key positions, and filter positions of a
    plan's join clause once — independent of any view's projection."""
    layout = JoinLayout(plan)
    compiled_hops = []
    for hop in plan.hops:
        key_position = layout.position(hop.left_relation, hop.left_column)
        filters = []
        for condition in hop.extra_filters:
            left_relation, left_column = condition.other(hop.partner)
            left_position = layout.position(left_relation, left_column)
            partner_position = hop.contributed.index_of(
                condition.column_of(hop.partner)
            )
            filters.append((left_position, partner_position))
        compiled_hops.append(CompiledHop(hop, key_position, tuple(filters)))
    return CompiledJoin(plan=plan, layout=layout, hops=tuple(compiled_hops))


def attach_select(bound: BoundView, join: CompiledJoin) -> CompiledPlan:
    """Wrap a (possibly shared) compiled join with one view's projection."""
    mapper = OutputMapper(bound, join.plan, layout=join.layout)
    return CompiledPlan(plan=join.plan, mapper=mapper, hops=join.hops, join=join)


def compile_plan(bound: BoundView, plan: MaintenancePlan) -> CompiledPlan:
    """Resolve the mapper, probe-key positions, and filter positions of a
    plan once, ahead of execution."""
    return attach_select(bound, compile_join(plan))


class OutputMapper:
    """Maps a plan's concatenated intermediate tuples to view output rows.

    During execution the intermediate tuple is the concatenation of the
    delta row and each hop's contributed row, in plan order; schemas can be
    trimmed (auxiliary relations).  All position arithmetic lives in the
    select-independent :class:`JoinLayout`; the mapper adds only this
    view's resolved select positions on top.
    """

    def __init__(
        self,
        bound: BoundView,
        plan: MaintenancePlan,
        layout: JoinLayout | None = None,
    ) -> None:
        self.bound = bound
        self.plan = plan
        self.layout = layout if layout is not None else JoinLayout(plan)
        self._select_positions = tuple(
            self.position(relation, column) for relation, column in bound.select
        )

    @property
    def total_arity(self) -> int:
        return self.layout.total_arity

    def position(self, relation: str, column: str) -> int:
        """Flat position of ``relation.column`` in the intermediate tuple."""
        return self.layout.position(relation, column)

    def prefix_arity(self, upto_hop: int) -> int:
        """Arity of the intermediate before hop index ``upto_hop`` runs."""
        return self.layout.prefix_arity(upto_hop)

    def to_view_row(self, concatenated: Row) -> Row:
        """Project a fully-joined intermediate tuple to the view's schema."""
        return tuple(concatenated[i] for i in self._select_positions)
