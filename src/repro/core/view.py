"""Join-view definitions.

A :class:`JoinViewDefinition` is the declarative object behind

    CREATE VIEW jv AS
        SELECT <select list>
        FROM R1, ..., Rn
        WHERE <equi-join conditions>
        PARTITIONED ON <output column>;

covering the paper's two-relation views (§2.1) and multi-relation views
(§2.2), with optional projection and either hash placement ("partitioned on
an attribute of A") or round-robin placement (the "not partitioned on an
attribute of A" variants of the figures).
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..cluster.partitioning import (
    HashPartitioning,
    PartitioningSpec,
    RoundRobinPartitioning,
)
from ..storage.schema import Column, Row, Schema


class ViewDefinitionError(ValueError):
    """Raised for malformed view definitions."""


@dataclass(frozen=True)
class JoinCondition:
    """One equi-join predicate: ``left.left_column = right.right_column``."""

    left: str
    left_column: str
    right: str
    right_column: str

    def __post_init__(self) -> None:
        if self.left == self.right:
            raise ViewDefinitionError("self-joins are not supported")

    def touches(self, relation: str) -> bool:
        return relation in (self.left, self.right)

    def column_of(self, relation: str) -> str:
        if relation == self.left:
            return self.left_column
        if relation == self.right:
            return self.right_column
        raise ViewDefinitionError(f"{relation!r} is not part of {self}")

    def other(self, relation: str) -> Tuple[str, str]:
        """The (relation, column) on the opposite side of ``relation``."""
        if relation == self.left:
            return (self.right, self.right_column)
        if relation == self.right:
            return (self.left, self.left_column)
        raise ViewDefinitionError(f"{relation!r} is not part of {self}")


#: A (relation, column) pair in a select list.
SelectItem = Tuple[str, str]


@dataclass(frozen=True)
class JoinViewDefinition:
    """A materialized join view over two or more base relations."""

    name: str
    relations: Tuple[str, ...]
    conditions: Tuple[JoinCondition, ...]
    select: Optional[Tuple[SelectItem, ...]] = None
    partitioning: PartitioningSpec = field(default_factory=RoundRobinPartitioning)

    def __post_init__(self) -> None:
        if len(self.relations) < 2:
            raise ViewDefinitionError("a join view needs at least two relations")
        if len(set(self.relations)) != len(self.relations):
            raise ViewDefinitionError("relations in a join view must be distinct")
        if not self.conditions:
            raise ViewDefinitionError("a join view needs at least one join condition")
        known = set(self.relations)
        for condition in self.conditions:
            if condition.left not in known or condition.right not in known:
                raise ViewDefinitionError(
                    f"condition {condition} references a relation outside {known}"
                )
        self._check_connected()

    def _check_connected(self) -> None:
        """The join graph must be connected, else maintenance would need
        cartesian products the paper never considers."""
        adjacency: Dict[str, set] = {r: set() for r in self.relations}
        for condition in self.conditions:
            adjacency[condition.left].add(condition.right)
            adjacency[condition.right].add(condition.left)
        seen = {self.relations[0]}
        frontier = [self.relations[0]]
        while frontier:
            current = frontier.pop()
            for neighbour in adjacency[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        if seen != set(self.relations):
            raise ViewDefinitionError(
                f"join graph of {self.name!r} is not connected: "
                f"{set(self.relations) - seen} unreachable"
            )

    def conditions_touching(self, relation: str) -> List[JoinCondition]:
        return [c for c in self.conditions if c.touches(relation)]

    def join_columns_of(self, relation: str) -> List[str]:
        """The distinct join attributes ``relation`` participates with."""
        seen: List[str] = []
        for condition in self.conditions_touching(relation):
            column = condition.column_of(relation)
            if column not in seen:
                seen.append(column)
        return seen


class BoundView:
    """A view definition resolved against concrete base-relation schemas.

    Owns the output schema (with SQL-style collision renaming), provenance
    of every output column, and the from-scratch evaluator used to verify
    incremental maintenance.
    """

    def __init__(self, definition: JoinViewDefinition, schemas: Mapping[str, Schema]) -> None:
        self.definition = definition
        self.schemas = {name: schemas[name] for name in definition.relations}
        for condition in definition.conditions:
            for relation, column in (
                (condition.left, condition.left_column),
                (condition.right, condition.right_column),
            ):
                if column not in self.schemas[relation]:
                    raise ViewDefinitionError(
                        f"{relation!r} has no column {column!r} "
                        f"(condition {condition})"
                    )
        self._qualified = self._qualify_columns()
        self.select: Tuple[SelectItem, ...] = (
            definition.select
            if definition.select is not None
            else tuple(
                (relation, column.name)
                for relation in definition.relations
                for column in self.schemas[relation].columns
            )
        )
        for relation, column in self.select:
            if relation not in self.schemas:
                raise ViewDefinitionError(f"select references unknown relation {relation!r}")
            if column not in self.schemas[relation]:
                raise ViewDefinitionError(
                    f"select references unknown column {relation}.{column}"
                )
        self.schema = Schema(
            definition.name,
            tuple(
                Column(self._qualified[(relation, column)],
                       self.schemas[relation].columns[
                           self.schemas[relation].index_of(column)].kind)
                for relation, column in self.select
            ),
        )
        if isinstance(definition.partitioning, HashPartitioning):
            if definition.partitioning.column not in self.schema:
                raise ViewDefinitionError(
                    f"view {definition.name!r} is partitioned on "
                    f"{definition.partitioning.column!r}, which is not in its "
                    f"select list {self.schema.column_names}"
                )

    def _qualify_columns(self) -> Dict[SelectItem, str]:
        """Output name of each (relation, column): bare when unique across
        the view's relations, ``relation_column`` when names collide."""
        frequency = collections.Counter(
            column.name
            for relation in self.definition.relations
            for column in self.schemas[relation].columns
        )
        qualified: Dict[SelectItem, str] = {}
        for relation in self.definition.relations:
            for column in self.schemas[relation].columns:
                if frequency[column.name] > 1:
                    qualified[(relation, column.name)] = f"{relation}_{column.name}"
                else:
                    qualified[(relation, column.name)] = column.name
        return qualified

    def output_name(self, relation: str, column: str) -> str:
        return self._qualified[(relation, column)]

    def source_of_output(self, output_column: str) -> SelectItem:
        """The (relation, column) an output column came from."""
        for item in self.select:
            if self._qualified[item] == output_column:
                return item
        raise ViewDefinitionError(
            f"view {self.definition.name!r} has no output column {output_column!r}"
        )

    def columns_needed_from(self, relation: str) -> List[str]:
        """Columns of ``relation`` the view needs: its select-list columns
        plus every join attribute — the trimming rule of paper §2.1.2."""
        needed: List[str] = []
        for rel, column in self.select:
            if rel == relation and column not in needed:
                needed.append(column)
        for column in self.definition.join_columns_of(relation):
            if column not in needed:
                needed.append(column)
        return needed

    # ------------------------------------------------------------ evaluate

    def evaluate(self, contents: Mapping[str, Iterable[Row]]) -> "collections.Counter":
        """The view's contents computed from scratch (bag semantics).

        Joins the base relations with in-memory hash joins following the
        definition's conditions; used by tests and examples as the ground
        truth that incremental maintenance must match.
        """
        order = self._evaluation_order()
        joined_relations = [order[0]]
        tuples: List[Dict[SelectItem, object]] = [
            {
                (order[0], column): value
                for column, value in zip(self.schemas[order[0]].column_names, row)
            }
            for row in contents[order[0]]
        ]
        for partner in order[1:]:
            connecting = [
                condition
                for condition in self.definition.conditions
                if condition.touches(partner)
                and condition.other(partner)[0] in joined_relations
            ]
            probe_condition, extra = connecting[0], connecting[1:]
            partner_schema = self.schemas[partner]
            key_position = partner_schema.index_of(probe_condition.column_of(partner))
            table: Dict[object, List[Row]] = {}
            for row in contents[partner]:
                table.setdefault(row[key_position], []).append(row)
            next_tuples: List[Dict[SelectItem, object]] = []
            left_relation, left_column = probe_condition.other(partner)
            for tup in tuples:
                for row in table.get(tup[(left_relation, left_column)], ()):
                    candidate = dict(tup)
                    candidate.update(
                        {
                            (partner, column): value
                            for column, value in zip(partner_schema.column_names, row)
                        }
                    )
                    if all(
                        candidate[condition.other(partner)]
                        == candidate[(partner, condition.column_of(partner))]
                        for condition in extra
                    ):
                        next_tuples.append(candidate)
            tuples = next_tuples
            joined_relations.append(partner)
        return collections.Counter(
            tuple(tup[item] for item in self.select) for tup in tuples
        )

    def _evaluation_order(self) -> List[str]:
        """A join order where each relation connects to its predecessors."""
        order = [self.definition.relations[0]]
        remaining = list(self.definition.relations[1:])
        while remaining:
            for candidate in remaining:
                connected = any(
                    condition.touches(candidate)
                    and condition.other(candidate)[0] in order
                    for condition in self.definition.conditions
                )
                if connected:
                    order.append(candidate)
                    remaining.remove(candidate)
                    break
            else:  # pragma: no cover - unreachable, graph is connected
                raise ViewDefinitionError("join graph is not connected")
        return order


def two_way_view(
    name: str,
    left: str,
    left_column: str,
    right: str,
    right_column: str,
    select: Optional[Sequence[SelectItem]] = None,
    partitioning: Optional[PartitioningSpec] = None,
) -> JoinViewDefinition:
    """Convenience constructor for the paper's canonical ``A ⋈ B`` view."""
    return JoinViewDefinition(
        name=name,
        relations=(left, right),
        conditions=(JoinCondition(left, left_column, right, right_column),),
        select=None if select is None else tuple(select),
        partitioning=partitioning or RoundRobinPartitioning(),
    )
