"""The global-index maintenance method (paper §2.1.3).

For every base relation R and join attribute c that R is not partitioned
on, keep GI_R: a hash-partitioned index mapping each value of c to the
global row ids — (node, local rowid) pairs — of the tuples holding it.  A
delta tuple travels to the value's GI home node, probes GI_partner there,
and then visits only the K ≤ min(N, L) nodes that actually own matching
tuples, fetching them by rowid.

The GI is the intermediate design point: it stores an entry per tuple
instead of a copy per tuple (less space than ARs), and visits K nodes
instead of one (AR) or all L (naive).  A GI is *distributed clustered* when
the base fragments are physically clustered on c at every node — then each
visited node serves all its matches with one page fetch.  At most one GI
per base relation can be distributed clustered, because a fragment clusters
on at most one attribute; provisioning enforces that by deriving the flag
from the declared local indexes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .view import BoundView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.cluster import Cluster


def provision_global_index(cluster: "Cluster", bound: BoundView) -> None:
    """Create the global indexes the view's maintenance plans need.

    A GI on R.c is distributed clustered exactly when R's fragments declare
    a clustered local index on c (the validation in
    :meth:`Cluster.create_global_index` re-checks this).
    """
    if cluster.faults is not None:
        # Backfilling a GI enumerates every base fragment's rowids: all
        # nodes must be up, or the rid-lists would be born incomplete.
        cluster.faults.require_all_up("provisioning global indexes")
    view_name = bound.definition.name
    for relation in bound.definition.relations:
        info = cluster.catalog.relation(relation)
        for column in bound.definition.join_columns_of(relation):
            if info.is_partitioned_on(column):
                if column not in info.indexes:
                    cluster.create_index(relation, column, clustered=False)
                continue
            existing = cluster.catalog.find_global_index(relation, column)
            if existing is not None:
                if view_name not in existing.serves_views:
                    existing.serves_views.append(view_name)
                continue
            distributed_clustered = info.indexes.get(column) is True
            created = cluster.create_global_index(
                relation, column, distributed_clustered=distributed_clustered
            )
            created.serves_views.append(view_name)
