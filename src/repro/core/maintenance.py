"""The maintenance engine shared by all three methods.

The three methods differ in *where a delta tuple must travel* and *what is
probed there*; that is captured entirely by the access paths in a
:class:`~repro.core.multiway.MaintenancePlan`.  This module executes plans:
it walks the hops per delta tuple (index-nested-loops) or per batch
(sort-merge), charges every SEND/SEARCH/FETCH/INSERT to the ledger, and
applies the resulting view delta.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from ..cluster.catalog import ViewInfo
from ..costs import Op, Tag
from ..faults.errors import FaultError
from ..storage.schema import Row
from .delta import Delta, PlacedRow
from .multiway import (
    AuxiliaryAccess,
    BaseAccess,
    GlobalIndexAccess,
    Hop,
    MaintenancePlan,
    OutputMapper,
)
from .view import BoundView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.cluster import Cluster
    from .optimizer import MaintenancePlanner


class MaintenanceMethod(enum.Enum):
    """The paper's three methods, plus the §4 per-relation hybrid."""

    NAIVE = "naive"
    AUXILIARY = "auxiliary"
    GLOBAL_INDEX = "global_index"
    HYBRID = "hybrid"

    @classmethod
    def coerce(cls, value: "MaintenanceMethod | str") -> "MaintenanceMethod":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                f"unknown maintenance method {value!r}; "
                f"expected one of {[m.value for m in cls]}"
            ) from None


class JoinStrategy(enum.Enum):
    """How delta tuples are joined with the partner at each hop."""

    AUTO = "auto"                    # the paper's cost-based choice
    INDEX_NESTED_LOOPS = "inl"       # per-tuple index probes
    SORT_MERGE = "sort_merge"        # batch scan/sort of the partner


#: An intermediate result: the node it currently resides on plus the
#: concatenated values joined so far.
Intermediate = Tuple[int, Row]


class JoinViewMaintainer:
    """Incrementally maintains one join view under one method."""

    def __init__(
        self,
        cluster: "Cluster",
        view_info: ViewInfo,
        bound: BoundView,
        planner: "MaintenancePlanner",
        strategy: JoinStrategy = JoinStrategy.AUTO,
    ) -> None:
        self.cluster = cluster
        self.view_info = view_info
        self.bound = bound
        self.planner = planner
        self.strategy = strategy

    @property
    def method(self) -> MaintenanceMethod:
        return self.planner.method

    # ------------------------------------------------------------- driver

    def apply(self, delta: Delta) -> None:
        """Propagate a base-relation delta into the view.

        A :class:`~repro.faults.errors.FaultError` escaping the join or the
        view write is annotated with the view and method before re-raising,
        so rolled-back statements say *which* maintenance hop died.
        """
        if delta.is_empty:
            return
        try:
            plan = self.planner.plan_for(delta.relation)
            mapper = OutputMapper(self.bound, plan)
            view_deletes = self._compute_join(plan, mapper, delta.deletes)
            view_inserts = self._compute_join(plan, mapper, delta.inserts)
            self.cluster.apply_view_delta(
                self.view_info,
                inserts=[(node, mapper.to_view_row(tup)) for node, tup in view_inserts],
                deletes=[(node, mapper.to_view_row(tup)) for node, tup in view_deletes],
            )
        except FaultError as exc:
            exc.add_context(
                f"maintaining view {self.view_info.name!r} "
                f"({self.method.value}) on delta of {delta.relation!r}"
            )
            raise

    def _compute_join(
        self,
        plan: MaintenancePlan,
        mapper: OutputMapper,
        placed: Sequence[PlacedRow],
    ) -> List[Intermediate]:
        """Join delta rows through every hop of the plan."""
        if not placed:
            return []
        state: List[Intermediate] = [(p.node, p.row) for p in placed]
        for hop_index, hop in enumerate(plan.hops):
            if not state:
                break
            use_sort_merge = self._pick_sort_merge(hop, len(state))
            key_position = mapper.position(hop.left_relation, hop.left_column)
            filters = self._compile_filters(hop, mapper)
            try:
                if use_sort_merge:
                    state = self._hop_sort_merge(hop, state, key_position, filters)
                else:
                    state = self._hop_index_nested_loops(
                        hop, state, key_position, filters
                    )
            except FaultError as exc:
                exc.add_context(
                    f"hop {hop_index} against {hop.partner!r} "
                    f"({'sort-merge' if use_sort_merge else 'index-nested-loops'})"
                )
                raise
        return state

    def _pick_sort_merge(self, hop: Hop, state_size: int) -> bool:
        if self.strategy is JoinStrategy.INDEX_NESTED_LOOPS:
            return False
        if self.strategy is JoinStrategy.SORT_MERGE:
            return True
        return self.planner.prefer_sort_merge(hop, state_size)

    def _compile_filters(self, hop: Hop, mapper: OutputMapper):
        """Turn extra join conditions into (left position, partner column
        position) pairs evaluated against candidate joined tuples."""
        compiled = []
        for condition in hop.extra_filters:
            left_relation, left_column = condition.other(hop.partner)
            left_position = mapper.position(left_relation, left_column)
            partner_position = hop.contributed.index_of(condition.column_of(hop.partner))
            compiled.append((left_position, partner_position))
        return compiled

    @staticmethod
    def _passes(
        filters, prefix: Row, partner_row: Row
    ) -> bool:
        return all(
            prefix[left_position] == partner_row[partner_position]
            for left_position, partner_position in filters
        )

    # --------------------------------------------- index-nested-loops hops

    def _hop_index_nested_loops(
        self,
        hop: Hop,
        state: List[Intermediate],
        key_position: int,
        filters,
    ) -> List[Intermediate]:
        access = hop.access
        if isinstance(access, BaseAccess):
            if access.broadcast:
                return self._inl_broadcast(hop, state, key_position, filters, access)
            return self._inl_colocated(
                hop, state, key_position, filters, access.fragment_name, access.column,
                self._base_key_router(access),
            )
        if isinstance(access, AuxiliaryAccess):
            aux = self.cluster.catalog.auxiliary(access.ar_name)
            return self._inl_colocated(
                hop, state, key_position, filters, access.ar_name, access.column,
                aux.partitioner.node_of_key,
            )
        if isinstance(access, GlobalIndexAccess):
            return self._inl_global_index(hop, state, key_position, filters, access)
        raise TypeError(f"unknown access path {access!r}")

    def _base_key_router(self, access: BaseAccess):
        info = self.cluster.catalog.relation(access.relation)
        return info.partitioner.node_of_key

    def _inl_broadcast(
        self, hop, state, key_position, filters, access: BaseAccess
    ) -> List[Intermediate]:
        """The naive method's hop: every delta tuple visits every node and
        probes the partner's local index there (Figure 2)."""
        results: List[Intermediate] = []
        for node, prefix in state:
            key = prefix[key_position]
            for destination in self.cluster.network.broadcast(node, Tag.MAINTAIN):
                matches = self.cluster.nodes[destination].index_probe(
                    access.relation, access.column, key, Tag.MAINTAIN
                )
                for partner_row in matches:
                    if self._passes(filters, prefix, partner_row):
                        results.append((destination, prefix + partner_row))
        return results

    def _inl_colocated(
        self, hop, state, key_position, filters, fragment_name, column, router
    ) -> List[Intermediate]:
        """The AR method's hop (and every method's hop when the partner is
        partitioned on the join attribute): one SEND to the owning node, one
        probe there (Figure 4)."""
        results: List[Intermediate] = []
        for node, prefix in state:
            key = prefix[key_position]
            destination = router(key)
            self.cluster.network.send(node, destination, Tag.MAINTAIN)
            matches = self.cluster.nodes[destination].index_probe(
                fragment_name, column, key, Tag.MAINTAIN
            )
            for partner_row in matches:
                if self._passes(filters, prefix, partner_row):
                    results.append((destination, prefix + partner_row))
        return results

    def _inl_global_index(
        self, hop, state, key_position, filters, access: GlobalIndexAccess
    ) -> List[Intermediate]:
        """The GI method's hop: probe the GI partition at the key's home
        node, then visit only the K nodes owning matches and fetch there by
        rowid (Figure 6)."""
        gi = self.cluster.catalog.global_index(access.gi_name)
        results: List[Intermediate] = []
        for node, prefix in state:
            key = prefix[key_position]
            home = gi.home_node(key)
            self.cluster.network.send(node, home, Tag.MAINTAIN)
            grouped = self.cluster.nodes[home].gi_probe(access.gi_name, key, Tag.MAINTAIN)
            for owner, grids in grouped.items():
                self.cluster.network.send(home, owner, Tag.MAINTAIN)
                rows = self.cluster.nodes[owner].fetch_by_rowids(
                    access.relation,
                    [grid.rowid for grid in grids],
                    Tag.MAINTAIN,
                    clustered_on_page=access.distributed_clustered,
                )
                for partner_row in rows:
                    if self._passes(filters, prefix, partner_row):
                        results.append((owner, prefix + partner_row))
        return results

    # ---------------------------------------------------- sort-merge hops

    def _hop_sort_merge(
        self,
        hop: Hop,
        state: List[Intermediate],
        key_position: int,
        filters,
    ) -> List[Intermediate]:
        """Batch alternative: instead of per-tuple probes, the partner's
        fragments are scanned (clustered) or sorted (non-clustered) once and
        merged with the routed delta (paper §3.1.2)."""
        access = hop.access
        if isinstance(access, BaseAccess) and access.broadcast:
            return self._sm_broadcast(hop, state, key_position, filters, access)
        if isinstance(access, BaseAccess):
            return self._sm_partitioned(
                hop, state, key_position, filters,
                access.fragment_name, access.column,
                self._base_key_router(access), sorted_fragments=access.clustered,
            )
        if isinstance(access, AuxiliaryAccess):
            aux = self.cluster.catalog.auxiliary(access.ar_name)
            return self._sm_partitioned(
                hop, state, key_position, filters,
                access.ar_name, access.column,
                aux.partitioner.node_of_key, sorted_fragments=True,
            )
        if isinstance(access, GlobalIndexAccess):
            # In the sort-merge regime the GI brings nothing: the work is
            # dominated by scanning/sorting the base fragments, exactly as
            # the paper's response-time model charges it.
            return self._sm_scan_all(
                hop, state, key_position, filters,
                access.relation, access.column,
                sorted_fragments=access.distributed_clustered,
            )
        raise TypeError(f"unknown access path {access!r}")

    def _charge_fragment_pass(self, fragment_name: str, node_id: int, is_sorted: bool) -> None:
        """Charge one node for consuming its fragment in merge order:
        a scan when already clustered on the join key, a sort otherwise."""
        node = self.cluster.nodes[node_id]
        pages = node.fragment_pages(fragment_name)
        if pages == 0:
            return
        if is_sorted:
            node.ledger.charge(node_id, Op.SCAN_PAGE, Tag.MAINTAIN, count=pages)
        else:
            cost = node.layout.sort_cost_pages(pages)
            node.ledger.charge(node_id, Op.SORT_PAGE, Tag.MAINTAIN, count=cost)

    def _merge_against_fragment(
        self, hop, prefixes: List[Row], key_position, filters, fragment_name, column, node_id
    ) -> List[Intermediate]:
        """Join routed prefixes against one node's fragment contents."""
        node = self.cluster.nodes[node_id]
        position = node.fragment(fragment_name).table.schema.index_of(column)
        by_key: Dict[object, List[Row]] = {}
        for row in node.scan(fragment_name):
            by_key.setdefault(row[position], []).append(row)
        results: List[Intermediate] = []
        for prefix in prefixes:
            for partner_row in by_key.get(prefix[key_position], ()):
                if self._passes(filters, prefix, partner_row):
                    results.append((node_id, prefix + partner_row))
        return results

    def _sm_broadcast(
        self, hop, state, key_position, filters, access: BaseAccess
    ) -> List[Intermediate]:
        """Naive sort-merge: every node receives the whole delta and merges
        it with its own partner fragment."""
        for node, _ in state:
            for _ in self.cluster.network.broadcast(node, Tag.MAINTAIN):
                pass
        prefixes = [prefix for _, prefix in state]
        results: List[Intermediate] = []
        for node in self.cluster.nodes:
            self._charge_fragment_pass(access.relation, node.node_id, access.clustered)
            results.extend(
                self._merge_against_fragment(
                    hop, prefixes, key_position, filters,
                    access.relation, access.column, node.node_id,
                )
            )
        return results

    def _sm_partitioned(
        self, hop, state, key_position, filters, fragment_name, column, router,
        sorted_fragments: bool,
    ) -> List[Intermediate]:
        """AR / co-located sort-merge: route the delta by join key, then
        each node merges its slice with its (clustered) fragment."""
        slices: Dict[int, List[Row]] = {}
        for node, prefix in state:
            destination = router(prefix[key_position])
            self.cluster.network.send(node, destination, Tag.MAINTAIN)
            slices.setdefault(destination, []).append(prefix)
        results: List[Intermediate] = []
        for node in self.cluster.nodes:
            self._charge_fragment_pass(fragment_name, node.node_id, sorted_fragments)
            prefixes = slices.get(node.node_id)
            if prefixes:
                results.extend(
                    self._merge_against_fragment(
                        hop, prefixes, key_position, filters,
                        fragment_name, column, node.node_id,
                    )
                )
        return results

    def _sm_scan_all(
        self, hop, state, key_position, filters, fragment_name, column,
        sorted_fragments: bool,
    ) -> List[Intermediate]:
        """GI sort-merge: the base fragments are scanned/sorted at every
        node; the delta (already keyed) is merged against each."""
        prefixes = [prefix for _, prefix in state]
        for node, prefix in state:
            # The delta still travels to its key's GI home node first.
            gi_home = self.cluster.catalog.global_index(
                hop.access.gi_name  # type: ignore[union-attr]
            ).home_node(prefix[key_position])
            self.cluster.network.send(node, gi_home, Tag.MAINTAIN)
        results: List[Intermediate] = []
        for node in self.cluster.nodes:
            self._charge_fragment_pass(fragment_name, node.node_id, sorted_fragments)
            results.extend(
                self._merge_against_fragment(
                    hop, prefixes, key_position, filters,
                    fragment_name, column, node.node_id,
                )
            )
        return results
