"""The maintenance engine shared by all three methods.

The three methods differ in *where a delta tuple must travel* and *what is
probed there*; that is captured entirely by the access paths in a
:class:`~repro.core.multiway.MaintenancePlan`.  This module executes plans:
it walks the hops per delta tuple (index-nested-loops) or per batch
(sort-merge), charges every SEND/SEARCH/FETCH/INSERT to the ledger, and
applies the resulting view delta.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from ..cluster.catalog import ViewInfo
from ..costs import Op, Tag
from ..faults.errors import FaultError
from ..storage.schema import Row
from .delta import Delta, PlacedRow
from .multiway import (
    AuxiliaryAccess,
    BaseAccess,
    CompiledPlan,
    GlobalIndexAccess,
    Hop,
    MaintenancePlan,
    OutputMapper,
)
from .view import BoundView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.cluster import Cluster
    from .optimizer import MaintenancePlanner


class MaintenanceMethod(enum.Enum):
    """The paper's three methods, plus the §4 per-relation hybrid."""

    NAIVE = "naive"
    AUXILIARY = "auxiliary"
    GLOBAL_INDEX = "global_index"
    HYBRID = "hybrid"

    @classmethod
    def coerce(cls, value: "MaintenanceMethod | str") -> "MaintenanceMethod":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                f"unknown maintenance method {value!r}; "
                f"expected one of {[m.value for m in cls]}"
            ) from None


class JoinStrategy(enum.Enum):
    """How delta tuples are joined with the partner at each hop."""

    AUTO = "auto"                    # the paper's cost-based choice
    INDEX_NESTED_LOOPS = "inl"       # per-tuple index probes
    SORT_MERGE = "sort_merge"        # batch scan/sort of the partner


#: An intermediate result: the node it currently resides on plus the
#: concatenated values joined so far.
Intermediate = Tuple[int, Row]


class JoinViewMaintainer:
    """Incrementally maintains one join view under one method."""

    def __init__(
        self,
        cluster: "Cluster",
        view_info: ViewInfo,
        bound: BoundView,
        planner: "MaintenancePlanner",
        strategy: JoinStrategy = JoinStrategy.AUTO,
    ) -> None:
        self.cluster = cluster
        self.view_info = view_info
        self.bound = bound
        self.planner = planner
        self.strategy = strategy

    @property
    def method(self) -> MaintenanceMethod:
        return self.planner.method

    # ------------------------------------------------------------- driver

    def _batch_mode(self) -> bool:
        """Whether the batched fast path may run for this statement.

        The batched engine is charge-equivalent only where the order of
        primitive operations is immaterial: the fault-free path, where
        ledger cells and network counters are commutative sums.  With a
        fault controller attached (injector answers are keyed to the call
        *sequence*) or an undo scope open (rollback needs per-mutation
        inverse records), execution routes through the tuple-at-a-time
        reference engine, which is the PR 1 code unchanged.
        """
        cluster = self.cluster
        return (
            cluster.batch_execution
            and cluster.faults is None
            and not cluster._undo_logs
        )

    def apply(self, delta: Delta) -> None:
        """Propagate a base-relation delta into the view.

        A :class:`~repro.faults.errors.FaultError` escaping the join or the
        view write is annotated with the view and method before re-raising,
        so rolled-back statements say *which* maintenance hop died.
        """
        if delta.is_empty:
            return
        try:
            with self.cluster.obs.span(
                "maintain",
                view=self.view_info.name,
                method=self.method.value,
                relation=delta.relation,
                inserts=len(delta.inserts),
                deletes=len(delta.deletes),
            ):
                compiled = self.planner.compiled_for(delta.relation)
                view_deletes = self._compute_join(compiled, delta.deletes)
                view_inserts = self._compute_join(compiled, delta.inserts)
                self._consume_join(compiled, view_inserts, view_deletes)
        except FaultError as exc:
            exc.add_context(
                f"maintaining view {self.view_info.name!r} "
                f"({self.method.value}) on delta of {delta.relation!r}"
            )
            raise

    def _consume_join(
        self,
        compiled: CompiledPlan,
        view_inserts: List[Intermediate],
        view_deletes: List[Intermediate],
    ) -> None:
        """Turn fully-joined intermediates into this view's delta.

        Split out of :meth:`apply` so the shared multi-view path can
        compute the join once per group of same-clause views and fan the
        intermediates out through each member's own projection; subclasses
        (aggregates) override this to fold instead of project.
        """
        to_view_row = compiled.mapper.to_view_row
        self.cluster.apply_view_delta(
            self.view_info,
            inserts=[(node, to_view_row(tup)) for node, tup in view_inserts],
            deletes=[(node, to_view_row(tup)) for node, tup in view_deletes],
        )

    def _parallel_hop_engine(self):
        """The running worker pool, when this maintainer's hops may use it.

        Only exact :class:`JoinViewMaintainer` instances qualify: subclasses
        may override hop behavior in ways the superstep ops don't model.
        Never *starts* a pool — a statement that began serially stays serial.
        """
        if type(self) is not JoinViewMaintainer:
            return None
        return self.cluster._parallel_running()

    def _compute_join(
        self,
        compiled: CompiledPlan,
        placed: Sequence[PlacedRow],
    ) -> List[Intermediate]:
        """Join delta rows through every hop of the plan."""
        if not placed:
            return []
        batch = self._batch_mode()
        engine = self._parallel_hop_engine() if batch else None
        obs = self.cluster.obs
        state: List[Intermediate] = [(p.node, p.row) for p in placed]
        for hop_index, chop in enumerate(compiled.hops):
            if not state:
                break
            hop = chop.hop
            use_sort_merge = self._pick_sort_merge(hop, len(state))
            key_position = chop.key_position
            filters = chop.filters
            try:
                with obs.span(
                    "hop",
                    index=hop_index,
                    partner=hop.partner,
                    algo="sort_merge" if use_sort_merge else "inl",
                    mode=(
                        "parallel" if engine is not None
                        else "batched" if batch else "reference"
                    ),
                    fanin=len(state),
                ) as span:
                    if obs.enabled:
                        from ..obs.collect import key_digest

                        span.tag(keys=key_digest(
                            {prefix[key_position] for _, prefix in state}
                        ))
                    if use_sort_merge:
                        state = self._hop_sort_merge(
                            hop, state, key_position, filters, batch=batch,
                            engine=engine,
                        )
                    elif batch:
                        state = self._hop_index_nested_loops_batched(
                            hop, state, key_position, filters, engine=engine
                        )
                    else:
                        state = self._hop_index_nested_loops(
                            hop, state, key_position, filters
                        )
                    span.tag(fanout=len(state))
            except FaultError as exc:
                exc.add_context(
                    f"hop {hop_index} against {hop.partner!r} "
                    f"({'sort-merge' if use_sort_merge else 'index-nested-loops'})"
                )
                raise
        return state

    def _pick_sort_merge(self, hop: Hop, state_size: int) -> bool:
        if self.strategy is JoinStrategy.INDEX_NESTED_LOOPS:
            return False
        if self.strategy is JoinStrategy.SORT_MERGE:
            return True
        return self.planner.prefer_sort_merge(hop, state_size)

    def _compile_filters(self, hop: Hop, mapper: OutputMapper):
        """Turn extra join conditions into (left position, partner column
        position) pairs evaluated against candidate joined tuples."""
        compiled = []
        for condition in hop.extra_filters:
            left_relation, left_column = condition.other(hop.partner)
            left_position = mapper.position(left_relation, left_column)
            partner_position = hop.contributed.index_of(condition.column_of(hop.partner))
            compiled.append((left_position, partner_position))
        return compiled

    @staticmethod
    def _passes(
        filters, prefix: Row, partner_row: Row
    ) -> bool:
        return all(
            prefix[left_position] == partner_row[partner_position]
            for left_position, partner_position in filters
        )

    # --------------------------------------------- index-nested-loops hops

    def _hop_index_nested_loops(
        self,
        hop: Hop,
        state: List[Intermediate],
        key_position: int,
        filters,
    ) -> List[Intermediate]:
        access = hop.access
        if isinstance(access, BaseAccess):
            if access.broadcast:
                return self._inl_broadcast(hop, state, key_position, filters, access)
            return self._inl_colocated(
                hop, state, key_position, filters, access.fragment_name, access.column,
                self._base_key_router(access),
            )
        if isinstance(access, AuxiliaryAccess):
            aux = self.cluster.catalog.auxiliary(access.ar_name)
            return self._inl_colocated(
                hop, state, key_position, filters, access.ar_name, access.column,
                aux.partitioner.node_of_key,
            )
        if isinstance(access, GlobalIndexAccess):
            return self._inl_global_index(hop, state, key_position, filters, access)
        raise TypeError(f"unknown access path {access!r}")

    def _base_key_router(self, access: BaseAccess):
        info = self.cluster.catalog.relation(access.relation)
        return info.partitioner.node_of_key

    def _inl_broadcast(
        self, hop, state, key_position, filters, access: BaseAccess
    ) -> List[Intermediate]:
        """The naive method's hop: every delta tuple visits every node and
        probes the partner's local index there (Figure 2)."""
        results: List[Intermediate] = []
        for node, prefix in state:
            key = prefix[key_position]
            for destination in self.cluster.network.broadcast(node, Tag.MAINTAIN):
                matches = self.cluster.nodes[destination].index_probe(
                    access.relation, access.column, key, Tag.MAINTAIN
                )
                for partner_row in matches:
                    if self._passes(filters, prefix, partner_row):
                        results.append((destination, prefix + partner_row))
        return results

    def _inl_colocated(
        self, hop, state, key_position, filters, fragment_name, column, router
    ) -> List[Intermediate]:
        """The AR method's hop (and every method's hop when the partner is
        partitioned on the join attribute): one SEND to the owning node, one
        probe there (Figure 4)."""
        results: List[Intermediate] = []
        for node, prefix in state:
            key = prefix[key_position]
            destination = router(key)
            self.cluster.network.send(node, destination, Tag.MAINTAIN)
            matches = self.cluster.nodes[destination].index_probe(
                fragment_name, column, key, Tag.MAINTAIN
            )
            for partner_row in matches:
                if self._passes(filters, prefix, partner_row):
                    results.append((destination, prefix + partner_row))
        return results

    def _inl_global_index(
        self, hop, state, key_position, filters, access: GlobalIndexAccess
    ) -> List[Intermediate]:
        """The GI method's hop: probe the GI partition at the key's home
        node, then visit only the K nodes owning matches and fetch there by
        rowid (Figure 6)."""
        gi = self.cluster.catalog.global_index(access.gi_name)
        results: List[Intermediate] = []
        for node, prefix in state:
            key = prefix[key_position]
            home = gi.home_node(key)
            self.cluster.network.send(node, home, Tag.MAINTAIN)
            grouped = self.cluster.nodes[home].gi_probe(access.gi_name, key, Tag.MAINTAIN)
            for owner, grids in grouped.items():
                self.cluster.network.send(home, owner, Tag.MAINTAIN)
                rows = self.cluster.nodes[owner].fetch_by_rowids(
                    access.relation,
                    [grid.rowid for grid in grids],
                    Tag.MAINTAIN,
                    clustered_on_page=access.distributed_clustered,
                )
                for partner_row in rows:
                    if self._passes(filters, prefix, partner_row):
                        results.append((owner, prefix + partner_row))
        return results

    # ------------------------------------- batched index-nested-loops hops

    def _hop_index_nested_loops_batched(
        self,
        hop: Hop,
        state: List[Intermediate],
        key_position: int,
        filters,
        engine=None,
    ) -> List[Intermediate]:
        """The batched fast path: one partition pass groups the in-flight
        state by (destination, join key), each distinct key is probed once
        per statement (the probe memo), repeats are *charged* without being
        re-executed, and cross-node traffic leaves as per-destination
        envelopes.  Charge totals, message counters, and the result order
        are identical to :meth:`_hop_index_nested_loops` — see DESIGN.md
        § Batched execution engine for the equivalence argument.

        With ``engine`` (a running worker pool) the distinct-key probes
        execute on the node workers as one superstep instead of inline; the
        grouping pass, repeat charging, and result assembly are byte-for-
        byte the same code, so equivalence is inherited (DESIGN.md § 8).
        """
        access = hop.access
        if isinstance(access, BaseAccess):
            if access.broadcast:
                return self._inl_broadcast_batched(
                    hop, state, key_position, filters, access, engine=engine
                )
            return self._inl_colocated_batched(
                hop, state, key_position, filters, access.fragment_name,
                access.column, self._base_key_router(access), engine=engine,
            )
        if isinstance(access, AuxiliaryAccess):
            aux = self.cluster.catalog.auxiliary(access.ar_name)
            return self._inl_colocated_batched(
                hop, state, key_position, filters, access.ar_name,
                access.column, aux.partitioner.node_of_key, engine=engine,
            )
        if isinstance(access, GlobalIndexAccess):
            return self._inl_global_index_batched(
                hop, state, key_position, filters, access, engine=engine
            )
        raise TypeError(f"unknown access path {access!r}")

    def _inl_colocated_batched(
        self, hop, state, key_position, filters, fragment_name, column, router,
        engine=None,
    ) -> List[Intermediate]:
        """Batched AR / co-located hop: route once, probe distinct keys once."""
        network = self.cluster.network
        nodes = self.cluster.nodes
        send_counts: Dict[Tuple[int, int], int] = {}
        occurrences: Dict[Tuple[int, object], int] = {}
        routed: List[Tuple[Row, Tuple[int, object]]] = []
        route_cache: Dict[object, int] = {}
        for node, prefix in state:
            key = prefix[key_position]
            destination = route_cache.get(key)
            if destination is None:
                destination = route_cache[key] = router(key)
            link = (node, destination)
            send_counts[link] = send_counts.get(link, 0) + 1
            slot = (destination, key)
            occurrences[slot] = occurrences.get(slot, 0) + 1
            routed.append((prefix, slot))
        for (src, dst), count in send_counts.items():
            network.send_many(src, dst, count, Tag.MAINTAIN)
        memo: Dict[Tuple[int, object], List[Row]] = {}
        ctx = self.cluster._shared_ctx
        pending = occurrences
        if ctx is not None:
            # Shared multi-view statement: a (fragment, column, node, key)
            # probe answered for an earlier view group this statement is
            # reused verbatim — no storage touch and no charge; the group
            # that executed it paid (DESIGN.md § 13, charge attribution).
            pending = {}
            for slot, times in occurrences.items():
                cached = ctx.lookup(fragment_name, column, slot[0], slot[1])
                if cached is not None:
                    memo[slot] = cached
                else:
                    pending[slot] = times
        if engine is not None:
            # One superstep: every distinct (destination, key) probe runs on
            # its node's worker; repeats charge through the coordinator's
            # mirror nodes exactly as the inline path below does.
            slots = list(pending)
            probe_results = engine.run_ops([
                ("probe", destination, fragment_name, column, key, Tag.MAINTAIN)
                for destination, key in slots
            ])
            for slot, matches in zip(slots, probe_results):
                memo[slot] = matches
                times = pending[slot]
                if times > 1:
                    nodes[slot[0]].charge_index_probe(
                        fragment_name, column, len(matches), Tag.MAINTAIN,
                        times=times - 1,
                    )
        else:
            for slot, times in pending.items():
                destination, key = slot
                matches = nodes[destination].index_probe(
                    fragment_name, column, key, Tag.MAINTAIN
                )
                memo[slot] = matches
                if times > 1:
                    nodes[destination].charge_index_probe(
                        fragment_name, column, len(matches), Tag.MAINTAIN,
                        times=times - 1,
                    )
        if ctx is not None:
            for slot in pending:
                ctx.store(fragment_name, column, slot[0], slot[1], memo[slot])
        results: List[Intermediate] = []
        passes = self._passes
        for prefix, slot in routed:
            destination = slot[0]
            for partner_row in memo[slot]:
                if not filters or passes(filters, prefix, partner_row):
                    results.append((destination, prefix + partner_row))
        return results

    def _inl_broadcast_batched(
        self, hop, state, key_position, filters, access: BaseAccess,
        engine=None,
    ) -> List[Intermediate]:
        """Batched naive hop: coalesce each source node's broadcasts into
        one envelope per link, probe each distinct key once per node."""
        network = self.cluster.network
        nodes = self.cluster.nodes
        broadcast_counts: Dict[int, int] = {}
        key_occurrences: Dict[object, int] = {}
        for node, prefix in state:
            broadcast_counts[node] = broadcast_counts.get(node, 0) + 1
            key = prefix[key_position]
            key_occurrences[key] = key_occurrences.get(key, 0) + 1
        for src, count in broadcast_counts.items():
            network.broadcast_many(src, count, Tag.MAINTAIN)
        memo: Dict[Tuple[int, object], List[Row]] = {}
        num_nodes = self.cluster.num_nodes
        ctx = self.cluster._shared_ctx
        pending: List[Tuple[int, object]] = []
        for key in key_occurrences:
            for node_id in range(num_nodes):
                if ctx is not None:
                    # A broadcast probe touches the same base fragment slots
                    # as a co-located probe, so the cross-group memo is
                    # shared between the two hop shapes (same namespace).
                    cached = ctx.lookup(
                        access.relation, access.column, node_id, key
                    )
                    if cached is not None:
                        memo[(node_id, key)] = cached
                        continue
                pending.append((node_id, key))
        if engine is not None:
            probe_results = engine.run_ops([
                ("probe", node_id, access.relation, access.column, key,
                 Tag.MAINTAIN)
                for node_id, key in pending
            ])
            for (node_id, key), matches in zip(pending, probe_results):
                memo[(node_id, key)] = matches
                times = key_occurrences[key]
                if times > 1:
                    nodes[node_id].charge_index_probe(
                        access.relation, access.column, len(matches),
                        Tag.MAINTAIN, times=times - 1,
                    )
        else:
            for node_id, key in pending:
                matches = nodes[node_id].index_probe(
                    access.relation, access.column, key, Tag.MAINTAIN
                )
                memo[(node_id, key)] = matches
                times = key_occurrences[key]
                if times > 1:
                    nodes[node_id].charge_index_probe(
                        access.relation, access.column, len(matches),
                        Tag.MAINTAIN, times=times - 1,
                    )
        if ctx is not None:
            for node_id, key in pending:
                ctx.store(
                    access.relation, access.column, node_id, key,
                    memo[(node_id, key)],
                )
        results: List[Intermediate] = []
        passes = self._passes
        for node, prefix in state:
            key = prefix[key_position]
            for destination in range(num_nodes):
                for partner_row in memo[(destination, key)]:
                    if not filters or passes(filters, prefix, partner_row):
                        results.append((destination, prefix + partner_row))
        return results

    def _inl_global_index_batched(
        self, hop, state, key_position, filters, access: GlobalIndexAccess,
        engine=None,
    ) -> List[Intermediate]:
        """Batched GI hop: one GI probe and one rowid-fetch batch per
        distinct key; repeats charge the modeled SEND/SEARCH/FETCH without
        touching storage again.

        Parallel mode needs two supersteps — the rowid fetches depend on the
        GI probe answers — which is exactly the paper's two-round GI
        protocol (probe the directory, then visit the owners)."""
        gi = self.cluster.catalog.global_index(access.gi_name)
        network = self.cluster.network
        nodes = self.cluster.nodes
        send_counts: Dict[Tuple[int, int], int] = {}
        key_occurrences: Dict[object, int] = {}
        home_cache: Dict[object, int] = {}
        routed: List[Tuple[Row, object]] = []
        for node, prefix in state:
            key = prefix[key_position]
            home = home_cache.get(key)
            if home is None:
                home = home_cache[key] = gi.home_node(key)
            link = (node, home)
            send_counts[link] = send_counts.get(link, 0) + 1
            key_occurrences[key] = key_occurrences.get(key, 0) + 1
            routed.append((prefix, key))
        for (src, dst), count in send_counts.items():
            network.send_many(src, dst, count, Tag.MAINTAIN)
        # Probe each distinct key once; fetch each owner's matches once.
        memo: Dict[object, List[Tuple[int, List[Row]]]] = {}
        owner_send_counts: Dict[Tuple[int, int], int] = {}
        ctx = self.cluster._shared_ctx
        pending_keys = key_occurrences
        if ctx is not None:
            # GI answers (probe + the owner fetches they trigger) are shared
            # across view groups per distinct key; a hit skips the probe,
            # the home->owner sends, and the fetches — all billed by the
            # group that executed them (DESIGN.md § 13).
            pending_keys = {}
            for key, times in key_occurrences.items():
                cached = ctx.lookup_gi(access.gi_name, key)
                if cached is not None:
                    memo[key] = cached
                else:
                    pending_keys[key] = times
        if engine is not None:
            keys = list(pending_keys)
            grouped_results = engine.run_ops([
                ("gi_probe", home_cache[key], access.gi_name, key, Tag.MAINTAIN)
                for key in keys
            ])
            fetch_ops: List[tuple] = []
            fetch_meta: List[Tuple[object, int, int]] = []
            for key, grouped in zip(keys, grouped_results):
                times = pending_keys[key]
                home = home_cache[key]
                if times > 1:
                    nodes[home].charge_gi_probe(
                        access.gi_name, Tag.MAINTAIN, times=times - 1
                    )
                memo[key] = []
                for owner, grids in grouped.items():
                    link = (home, owner)
                    owner_send_counts[link] = (
                        owner_send_counts.get(link, 0) + times
                    )
                    fetch_ops.append((
                        "fetch", owner, access.relation,
                        tuple(grid.rowid for grid in grids), Tag.MAINTAIN,
                        access.distributed_clustered,
                    ))
                    fetch_meta.append((key, owner, len(grids)))
            fetch_results = engine.run_ops(fetch_ops)
            for (key, owner, num_grids), rows in zip(fetch_meta, fetch_results):
                memo[key].append((owner, rows))
                times = pending_keys[key]
                if times > 1:
                    units = 1 if access.distributed_clustered else num_grids
                    nodes[owner].charge_fetch(
                        access.relation, units, Tag.MAINTAIN, times=times - 1
                    )
        else:
            for key, times in pending_keys.items():
                home = home_cache[key]
                grouped = nodes[home].gi_probe(access.gi_name, key, Tag.MAINTAIN)
                if times > 1:
                    nodes[home].charge_gi_probe(
                        access.gi_name, Tag.MAINTAIN, times=times - 1
                    )
                fetched: List[Tuple[int, List[Row]]] = []
                for owner, grids in grouped.items():
                    link = (home, owner)
                    owner_send_counts[link] = owner_send_counts.get(link, 0) + times
                    rows = nodes[owner].fetch_by_rowids(
                        access.relation,
                        [grid.rowid for grid in grids],
                        Tag.MAINTAIN,
                        clustered_on_page=access.distributed_clustered,
                    )
                    if times > 1:
                        units = 1 if access.distributed_clustered else len(grids)
                        nodes[owner].charge_fetch(
                            access.relation, units, Tag.MAINTAIN, times=times - 1
                        )
                    fetched.append((owner, rows))
                memo[key] = fetched
        for (src, dst), count in owner_send_counts.items():
            network.send_many(src, dst, count, Tag.MAINTAIN)
        if ctx is not None:
            for key in pending_keys:
                ctx.store_gi(access.gi_name, key, memo[key])
        results: List[Intermediate] = []
        passes = self._passes
        for prefix, key in routed:
            for owner, rows in memo[key]:
                for partner_row in rows:
                    if not filters or passes(filters, prefix, partner_row):
                        results.append((owner, prefix + partner_row))
        return results

    # ---------------------------------------------------- sort-merge hops

    def _hop_sort_merge(
        self,
        hop: Hop,
        state: List[Intermediate],
        key_position: int,
        filters,
        batch: bool = False,
        engine=None,
    ) -> List[Intermediate]:
        """Batch alternative: instead of per-tuple probes, the partner's
        fragments are scanned (clustered) or sorted (non-clustered) once and
        merged with the routed delta (paper §3.1.2)."""
        access = hop.access
        if isinstance(access, BaseAccess) and access.broadcast:
            return self._sm_broadcast(
                hop, state, key_position, filters, access, batch=batch,
                engine=engine,
            )
        if isinstance(access, BaseAccess):
            return self._sm_partitioned(
                hop, state, key_position, filters,
                access.fragment_name, access.column,
                self._base_key_router(access), sorted_fragments=access.clustered,
                batch=batch, engine=engine,
            )
        if isinstance(access, AuxiliaryAccess):
            aux = self.cluster.catalog.auxiliary(access.ar_name)
            return self._sm_partitioned(
                hop, state, key_position, filters,
                access.ar_name, access.column,
                aux.partitioner.node_of_key, sorted_fragments=True,
                batch=batch, engine=engine,
            )
        if isinstance(access, GlobalIndexAccess):
            # In the sort-merge regime the GI brings nothing: the work is
            # dominated by scanning/sorting the base fragments, exactly as
            # the paper's response-time model charges it.
            return self._sm_scan_all(
                hop, state, key_position, filters,
                access.relation, access.column,
                sorted_fragments=access.distributed_clustered,
                batch=batch, engine=engine,
            )
        raise TypeError(f"unknown access path {access!r}")

    def _sm_merge_parallel(
        self, engine, fragment_name, column, sorted_fragments,
        slices: Dict[int, List[Row]], key_position, filters,
    ) -> List[Intermediate]:
        """One superstep of per-node merge passes (the parallel half of the
        sort-merge hops).

        Every node receives a ``merge`` command — the scan/sort pass is
        charged *per node* whether or not its delta slice is empty, exactly
        like the serial loop — carrying the distinct join keys of that
        node's slice.  Workers return matches grouped by key in fragment
        scan order; the assembly below then walks (node order x slice order
        x scan order), the same nesting as
        :meth:`_merge_against_fragment`.
        """
        num_nodes = self.cluster.num_nodes
        wanted: List[Tuple[object, ...]] = []
        for node_id in range(num_nodes):
            prefixes = slices.get(node_id)
            if prefixes:
                wanted.append(
                    tuple(dict.fromkeys(p[key_position] for p in prefixes))
                )
            else:
                wanted.append(())
        merge_results = engine.run_ops([
            ("merge", node_id, fragment_name, column, sorted_fragments,
             wanted[node_id], Tag.MAINTAIN)
            for node_id in range(num_nodes)
        ])
        results: List[Intermediate] = []
        passes = self._passes
        for node_id, matches in enumerate(merge_results):
            prefixes = slices.get(node_id)
            if not prefixes:
                continue
            for prefix in prefixes:
                for partner_row in matches.get(prefix[key_position], ()):
                    if passes(filters, prefix, partner_row):
                        results.append((node_id, prefix + partner_row))
        return results

    def _charge_fragment_pass(self, fragment_name: str, node_id: int, is_sorted: bool) -> None:
        """Charge one node for consuming its fragment in merge order:
        a scan when already clustered on the join key, a sort otherwise."""
        node = self.cluster.nodes[node_id]
        pages = node.fragment_pages(fragment_name)
        if pages == 0:
            return
        if is_sorted:
            node.ledger.charge(node_id, Op.SCAN_PAGE, Tag.MAINTAIN, count=pages)
        else:
            cost = node.layout.sort_cost_pages(pages)
            node.ledger.charge(node_id, Op.SORT_PAGE, Tag.MAINTAIN, count=cost)

    def _merge_against_fragment(
        self, hop, prefixes: List[Row], key_position, filters, fragment_name, column, node_id
    ) -> List[Intermediate]:
        """Join routed prefixes against one node's fragment contents."""
        node = self.cluster.nodes[node_id]
        position = node.fragment(fragment_name).table.schema.index_of(column)
        by_key: Dict[object, List[Row]] = {}
        for row in node.scan(fragment_name):
            by_key.setdefault(row[position], []).append(row)
        results: List[Intermediate] = []
        for prefix in prefixes:
            for partner_row in by_key.get(prefix[key_position], ()):
                if self._passes(filters, prefix, partner_row):
                    results.append((node_id, prefix + partner_row))
        return results

    def _sm_broadcast(
        self, hop, state, key_position, filters, access: BaseAccess,
        batch: bool = False, engine=None,
    ) -> List[Intermediate]:
        """Naive sort-merge: every node receives the whole delta and merges
        it with its own partner fragment."""
        if batch:
            broadcast_counts: Dict[int, int] = {}
            for node, _ in state:
                broadcast_counts[node] = broadcast_counts.get(node, 0) + 1
            for src, count in broadcast_counts.items():
                self.cluster.network.broadcast_many(src, count, Tag.MAINTAIN)
        else:
            for node, _ in state:
                for _ in self.cluster.network.broadcast(node, Tag.MAINTAIN):
                    pass
        prefixes = [prefix for _, prefix in state]
        if engine is not None:
            slices = {
                node_id: prefixes for node_id in range(self.cluster.num_nodes)
            }
            return self._sm_merge_parallel(
                engine, access.relation, access.column, access.clustered,
                slices, key_position, filters,
            )
        results: List[Intermediate] = []
        for node in self.cluster.nodes:
            self._charge_fragment_pass(access.relation, node.node_id, access.clustered)
            results.extend(
                self._merge_against_fragment(
                    hop, prefixes, key_position, filters,
                    access.relation, access.column, node.node_id,
                )
            )
        return results

    def _sm_partitioned(
        self, hop, state, key_position, filters, fragment_name, column, router,
        sorted_fragments: bool, batch: bool = False, engine=None,
    ) -> List[Intermediate]:
        """AR / co-located sort-merge: route the delta by join key, then
        each node merges its slice with its (clustered) fragment."""
        slices: Dict[int, List[Row]] = {}
        if batch:
            send_counts: Dict[Tuple[int, int], int] = {}
            route_cache: Dict[object, int] = {}
            for node, prefix in state:
                key = prefix[key_position]
                destination = route_cache.get(key)
                if destination is None:
                    destination = route_cache[key] = router(key)
                link = (node, destination)
                send_counts[link] = send_counts.get(link, 0) + 1
                slices.setdefault(destination, []).append(prefix)
            for (src, dst), count in send_counts.items():
                self.cluster.network.send_many(src, dst, count, Tag.MAINTAIN)
        else:
            for node, prefix in state:
                destination = router(prefix[key_position])
                self.cluster.network.send(node, destination, Tag.MAINTAIN)
                slices.setdefault(destination, []).append(prefix)
        if engine is not None:
            return self._sm_merge_parallel(
                engine, fragment_name, column, sorted_fragments,
                slices, key_position, filters,
            )
        results: List[Intermediate] = []
        for node in self.cluster.nodes:
            self._charge_fragment_pass(fragment_name, node.node_id, sorted_fragments)
            prefixes = slices.get(node.node_id)
            if prefixes:
                results.extend(
                    self._merge_against_fragment(
                        hop, prefixes, key_position, filters,
                        fragment_name, column, node.node_id,
                    )
                )
        return results

    def _sm_scan_all(
        self, hop, state, key_position, filters, fragment_name, column,
        sorted_fragments: bool, batch: bool = False, engine=None,
    ) -> List[Intermediate]:
        """GI sort-merge: the base fragments are scanned/sorted at every
        node; the delta (already keyed) is merged against each."""
        prefixes = [prefix for _, prefix in state]
        gi = self.cluster.catalog.global_index(
            hop.access.gi_name  # type: ignore[union-attr]
        )
        if batch:
            send_counts: Dict[Tuple[int, int], int] = {}
            home_cache: Dict[object, int] = {}
            for node, prefix in state:
                key = prefix[key_position]
                gi_home = home_cache.get(key)
                if gi_home is None:
                    gi_home = home_cache[key] = gi.home_node(key)
                link = (node, gi_home)
                send_counts[link] = send_counts.get(link, 0) + 1
            for (src, dst), count in send_counts.items():
                self.cluster.network.send_many(src, dst, count, Tag.MAINTAIN)
        else:
            for node, prefix in state:
                # The delta still travels to its key's GI home node first.
                gi_home = gi.home_node(prefix[key_position])
                self.cluster.network.send(node, gi_home, Tag.MAINTAIN)
        if engine is not None:
            slices = {
                node_id: prefixes for node_id in range(self.cluster.num_nodes)
            }
            return self._sm_merge_parallel(
                engine, fragment_name, column, sorted_fragments,
                slices, key_position, filters,
            )
        results: List[Intermediate] = []
        for node in self.cluster.nodes:
            self._charge_fragment_pass(fragment_name, node.node_id, sorted_fragments)
            results.extend(
                self._merge_against_fragment(
                    hop, prefixes, key_position, filters,
                    fragment_name, column, node.node_id,
                )
            )
        return results
