"""The hybrid maintenance method (paper §4).

The conclusion suggests that "in many cases, it is possible that a hybrid
method will outperform any of the three methods" and starts listing
heuristics (the published text truncates there).  This module implements
the natural instantiation: choose the auxiliary structure **per base
relation**, instead of one method for the whole view —

* a relation already partitioned on the join attribute needs nothing
  (every method agrees);
* a *small* join partner gets an auxiliary relation: the copy is cheap and
  probes touch exactly one node;
* a *large* join partner gets a global index: an entry per tuple instead
  of a row copy per tuple, at the cost of visiting K nodes.

``ar_row_budget`` is the storage knob: partners at or below it get ARs.
Plan resolution then prefers, per hop, whatever structure exists —
co-located base > AR > GI > broadcast — so a hybrid view mixes one-node
and K-node hops in a single maintenance plan.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from .view import BoundView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.cluster import Cluster

#: Partners with at most this many rows get an AR by default; the value is
#: a storage/speed knob, not a tuning constant from the paper.
DEFAULT_AR_ROW_BUDGET = 10_000


def provision_hybrid(
    cluster: "Cluster",
    bound: BoundView,
    ar_row_budget: int = DEFAULT_AR_ROW_BUDGET,
    choices: Dict[str, str] | None = None,
) -> Dict[str, str]:
    """Provision per-relation structures for a hybrid view.

    ``choices`` overrides the size heuristic per relation name with
    ``"auxiliary"`` or ``"global_index"``.  Returns the decision made for
    each relation (``"none"`` when it is partitioned on its join column).
    """
    view_name = bound.definition.name
    decisions: Dict[str, str] = {}
    overrides = choices or {}
    for relation in bound.definition.relations:
        info = cluster.catalog.relation(relation)
        for column in bound.definition.join_columns_of(relation):
            if info.is_partitioned_on(column):
                if column not in info.indexes:
                    cluster.create_index(relation, column, clustered=False)
                decisions.setdefault(relation, "none")
                continue
            choice = overrides.get(relation)
            if choice is None:
                choice = (
                    "auxiliary"
                    if info.row_count <= ar_row_budget
                    else "global_index"
                )
            if choice == "auxiliary":
                if cluster.catalog.find_auxiliary(relation, column) is None:
                    created = cluster.create_auxiliary_relation(relation, column)
                    created.serves_views.append(view_name)
            elif choice == "global_index":
                if cluster.catalog.find_global_index(relation, column) is None:
                    created = cluster.create_global_index(
                        relation,
                        column,
                        distributed_clustered=info.indexes.get(column) is True,
                    )
                    created.serves_views.append(view_name)
            else:
                raise ValueError(
                    f"hybrid choice for {relation!r} must be 'auxiliary' or "
                    f"'global_index', not {choice!r}"
                )
            decisions[relation] = choice
    return decisions
