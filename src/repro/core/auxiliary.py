"""The auxiliary-relation maintenance method (paper §2.1.2).

For every base relation R and every join attribute c that R is *not*
partitioned on, keep AR_R: a selection/projection of R hash-partitioned on
c with a clustered index on c.  A delta tuple then travels to exactly one
node — the one its join-attribute value hashes to — is appended to AR_R
there, and joins against AR_partner *at the same node* (both ARs partition
on the same attribute's value domain).  All-node work becomes one-node
work, at the price of storing the copies and co-updating them.

Provisioning here creates the missing ARs (optionally trimmed to the
columns the view needs, §2.1.2's storage minimization) and records which
views each AR serves, so shared ARs are widened consciously rather than
silently under-provisioned.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .trimming import requirement_for
from .view import BoundView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.cluster import Cluster


class AuxiliaryProvisioningError(RuntimeError):
    """An existing AR cannot serve the new view (missing columns)."""


def provision_auxiliary(
    cluster: "Cluster", bound: BoundView, trim: bool = False
) -> None:
    """Create the auxiliary relations the view's maintenance plans need.

    For each (relation, join attribute) pair: nothing if the relation is
    already partitioned on the attribute (only an index is ensured there);
    otherwise an AR partitioned on it.  With ``trim=True`` the AR keeps only
    the columns this view needs; an existing trimmed AR that lacks a column
    the new view needs raises, with the remedy in the message.
    """
    if cluster.faults is not None:
        # Backfilling an AR scans every base fragment: all nodes must be up,
        # or the new copy would silently miss a crashed node's tuples.
        cluster.faults.require_all_up("provisioning auxiliary relations")
    view_name = bound.definition.name
    for relation in bound.definition.relations:
        info = cluster.catalog.relation(relation)
        for column in bound.definition.join_columns_of(relation):
            if info.is_partitioned_on(column):
                if column not in info.indexes:
                    cluster.create_index(relation, column, clustered=False)
                continue
            existing = cluster.catalog.find_auxiliary(relation, column)
            if existing is not None:
                _check_coverage(existing, bound, relation, column)
                if view_name not in existing.serves_views:
                    existing.serves_views.append(view_name)
                continue
            columns = None
            if trim:
                columns = requirement_for(bound, relation, column).needed_columns
            created = cluster.create_auxiliary_relation(
                relation, column, columns=columns
            )
            created.serves_views.append(view_name)


def _check_coverage(existing, bound: BoundView, relation: str, column: str) -> None:
    if existing.columns is None:
        return  # full copy covers everything
    needed = set(requirement_for(bound, relation, column).needed_columns)
    missing = needed - set(existing.columns)
    if missing:
        raise AuxiliaryProvisioningError(
            f"auxiliary relation {existing.name!r} (serving "
            f"{existing.serves_views}) was trimmed to {existing.columns} and "
            f"lacks {sorted(missing)} needed by view "
            f"{bound.definition.name!r}; recreate it with the merged column "
            "set (see repro.core.trimming.merge_requirements)"
        )
