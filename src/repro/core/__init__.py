"""The paper's contribution: join-view maintenance methods and planning."""

from .delta import Delta, PlacedRow, ViewDelta
from .view import (
    BoundView,
    JoinCondition,
    JoinViewDefinition,
    ViewDefinitionError,
    two_way_view,
)
from .multiway import (
    AuxiliaryAccess,
    BaseAccess,
    CompiledJoin,
    GlobalIndexAccess,
    Hop,
    JoinLayout,
    MaintenancePlan,
    OutputMapper,
    enumerate_orders,
)
from .maintenance import JoinStrategy, JoinViewMaintainer, MaintenanceMethod
from .optimizer import (
    MaintenancePlanner,
    MethodAdvisor,
    MethodRecommendation,
    PlanningError,
)
from .statistics import RelationStatistics, StatisticsCache
from .trimming import (
    AuxiliaryRequirement,
    merge_requirements,
    requirement_for,
    trimming_savings,
)
from .hybrid import DEFAULT_AR_ROW_BUDGET, provision_hybrid
from .shared import MultiViewStats, SharedMaintenanceContext, maintain_views
from .workload_advisor import (
    SharingProposal,
    WorkloadAdvisor,
    WorkloadProfile,
    WorkloadVerdict,
    propose_structure_sharing,
)
from .aggregates import (
    Aggregate,
    AggregateFunction,
    AggregateSpec,
    aggregate_rows,
    define_aggregate_join_view,
    recompute_aggregate,
)
from .deferred import (
    DeferredMaintainer,
    RefreshReport,
    defer_view,
    fresh_view_rows,
)
from .registry import define_join_view, recompute_view

__all__ = [
    "Delta",
    "PlacedRow",
    "ViewDelta",
    "JoinCondition",
    "JoinViewDefinition",
    "BoundView",
    "ViewDefinitionError",
    "two_way_view",
    "BaseAccess",
    "AuxiliaryAccess",
    "GlobalIndexAccess",
    "CompiledJoin",
    "Hop",
    "JoinLayout",
    "MaintenancePlan",
    "OutputMapper",
    "enumerate_orders",
    "MaintenanceMethod",
    "JoinStrategy",
    "JoinViewMaintainer",
    "MaintenancePlanner",
    "MethodAdvisor",
    "MethodRecommendation",
    "PlanningError",
    "RelationStatistics",
    "StatisticsCache",
    "AuxiliaryRequirement",
    "requirement_for",
    "merge_requirements",
    "trimming_savings",
    "define_join_view",
    "recompute_view",
    "provision_hybrid",
    "DEFAULT_AR_ROW_BUDGET",
    "WorkloadAdvisor",
    "WorkloadProfile",
    "WorkloadVerdict",
    "SharingProposal",
    "propose_structure_sharing",
    "MultiViewStats",
    "SharedMaintenanceContext",
    "maintain_views",
    "Aggregate",
    "AggregateFunction",
    "AggregateSpec",
    "define_aggregate_join_view",
    "aggregate_rows",
    "recompute_aggregate",
    "DeferredMaintainer",
    "RefreshReport",
    "defer_view",
    "fresh_view_rows",
]
