"""Aggregate join views.

The paper studies plain join views; its authors' companion work extends
the same maintenance machinery to *aggregate* join views — ``SELECT g,
COUNT(*), SUM(x) FROM A, B WHERE ... GROUP BY g`` — which is also where
materialized views earn most of their keep in a warehouse.  This module
adds that extension on top of the existing delta pipeline:

1. the join delta is computed exactly as for a plain view (naive / AR /
   GI plans all work unchanged);
2. instead of materializing raw join tuples, each result folds into its
   group's running aggregates: +1/-1 to COUNT, ±value to SUM;
3. each group row lives on the node its group key hashes to, so applying
   a group's contribution is one probe + one write there;
4. a group whose COUNT reaches zero is removed — which is why COUNT is
   always maintained, even when not selected (the classic requirement for
   deletable SUM/AVG views).

Supported aggregates: COUNT, SUM, AVG (stored as SUM plus the shared
COUNT; divided on read).  MIN/MAX are deliberately out: they are not
self-maintainable under deletions without auxiliary per-group state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.catalog import ViewInfo
from ..cluster.partitioning import HashPartitioning
from ..costs import Op, Tag
from ..storage.schema import Column, Row, Schema
from .delta import Delta
from .maintenance import JoinStrategy, JoinViewMaintainer, MaintenanceMethod
from .view import BoundView, JoinViewDefinition, SelectItem, ViewDefinitionError


class AggregateFunction(enum.Enum):
    COUNT = "count"
    SUM = "sum"
    AVG = "avg"


@dataclass(frozen=True)
class Aggregate:
    """One aggregate output: ``function(relation.column) AS name``.

    COUNT takes no input column (``COUNT(*)``); SUM/AVG need a numeric
    input column from one of the view's relations.
    """

    function: AggregateFunction
    name: str
    source: Optional[SelectItem] = None

    def __post_init__(self) -> None:
        if self.function is AggregateFunction.COUNT:
            if self.source is not None:
                raise ViewDefinitionError("COUNT(*) takes no input column")
        elif self.source is None:
            raise ViewDefinitionError(
                f"{self.function.value.upper()} needs an input column"
            )


@dataclass(frozen=True)
class AggregateSpec:
    """GROUP BY columns plus the aggregate outputs."""

    group_by: Tuple[SelectItem, ...]
    aggregates: Tuple[Aggregate, ...]

    def __post_init__(self) -> None:
        if not self.group_by:
            raise ViewDefinitionError("aggregate views need GROUP BY columns")
        if not self.aggregates:
            raise ViewDefinitionError("aggregate views need at least one aggregate")
        names = [a.name for a in self.aggregates]
        if len(set(names)) != len(names):
            raise ViewDefinitionError(f"duplicate aggregate names: {names}")

    def needed_items(self) -> List[SelectItem]:
        """Every (relation, column) the join delta must carry."""
        items = list(self.group_by)
        for aggregate in self.aggregates:
            if aggregate.source is not None and aggregate.source not in items:
                items.append(aggregate.source)
        return items


class AggregateViewMaintainer(JoinViewMaintainer):
    """Maintains grouped aggregates from the join delta.

    The stored row layout is::

        (group columns..., _count, sum columns...)

    ``_count`` is the group's join-tuple multiplicity (doubles as COUNT(*)
    and as the AVG divisor); one sum column exists per distinct SUM/AVG
    input.  ``read_rows`` projects this physical layout onto the declared
    outputs.
    """

    def __init__(
        self,
        cluster,
        view_info: ViewInfo,
        bound: BoundView,
        planner,
        spec: AggregateSpec,
        strategy: JoinStrategy = JoinStrategy.AUTO,
    ) -> None:
        super().__init__(cluster, view_info, bound, planner, strategy)
        self.spec = spec
        #: distinct SUM/AVG inputs, in first-appearance order
        self.sum_sources: List[SelectItem] = []
        for aggregate in spec.aggregates:
            if aggregate.source is not None and aggregate.source not in self.sum_sources:
                self.sum_sources.append(aggregate.source)

    # ---------------------------------------------------------- the apply

    def apply(self, delta: Delta) -> None:
        if delta.is_empty:
            return
        # Aggregate folding rewrites view rows in place, outside the
        # superstep engine's command set: never let a worker pool keep a
        # (soon stale) replica.  Statements on relations with aggregate
        # views already drain at entry (Cluster._views_parallel_safe); this
        # covers direct calls, e.g. through a deferred wrapper's refresh().
        self.cluster._drain_parallel()
        compiled = self.planner.compiled_for(delta.relation)
        view_deletes = self._compute_join(compiled, delta.deletes)
        view_inserts = self._compute_join(compiled, delta.inserts)
        self._consume_join(compiled, view_inserts, view_deletes)

    def _consume_join(self, compiled, view_inserts, view_deletes) -> None:
        """Fold joined intermediates into per-group contributions.

        Overrides the base class's project-and-write consumption, so the
        shared multi-view path can feed an aggregate view from the same
        join intermediates as its plain siblings — the group/sum positions
        resolve through the select-independent layout, never the select.
        """
        mapper = compiled.mapper
        group_positions = tuple(
            mapper.position(relation, column) for relation, column in self.spec.group_by
        )
        sum_positions = tuple(
            mapper.position(relation, column) for relation, column in self.sum_sources
        )

        contributions: Dict[int, Dict[Row, List[float]]] = {}

        def fold(results, sign: int) -> None:
            for node, tup in results:
                group = tuple(tup[i] for i in group_positions)
                sums = [float(tup[i]) for i in sum_positions]
                per_node = contributions.setdefault(node, {})
                entry = per_node.setdefault(group, [0, *([0.0] * len(sums))])
                entry[0] += sign
                for offset, value in enumerate(sums):
                    entry[1 + offset] += sign * value

        fold(view_deletes, -1)
        fold(view_inserts, +1)
        self._apply_contributions(contributions)

    def _apply_contributions(
        self, contributions: Dict[int, Dict[Row, List[float]]]
    ) -> None:
        """Route each group's net contribution to its home node and fold it
        into the stored row there (probe + rewrite, tagged VIEW).

        Every fragment mutation records its inverse through the cluster's
        undo log: a transaction rollback (or an injected fault mid-
        statement) must restore the *aggregate* rows along with the base
        relations, or the folded counts/sums silently diverge from the
        data they summarize.
        """
        view = self.view_info
        name = view.name
        arity = len(self.spec.group_by)
        record_undo = self.cluster._record_undo
        for source_node, groups in contributions.items():
            for group, entry in groups.items():
                count_delta, sums_delta = int(entry[0]), entry[1:]
                if count_delta == 0 and all(v == 0 for v in sums_delta):
                    continue
                home = view.partitioner.node_of_key(group)
                self.cluster.network.send(source_node, home, Tag.VIEW)
                node = self.cluster.nodes[home]
                fragment = node.fragment(name)
                index = fragment.index_on("_group")
                node.ledger.charge(home, Op.SEARCH, Tag.VIEW)
                rowids = index.search(group)
                if rowids:
                    rowid = rowids[0]
                    stored = fragment.table.fetch(rowid)
                    new_count = stored[arity] + count_delta
                    new_sums = [
                        stored[arity + 1 + i] + sums_delta[i]
                        for i in range(len(sums_delta))
                    ]
                    fragment.delete(rowid)
                    record_undo(
                        lambda f=fragment, r=rowid, t=stored: f.restore(r, t),
                        node=home, tag=Tag.VIEW, writes=1,
                        description=f"restore {name} aggregate row",
                    )
                    if new_count > 0:
                        new_rowid = fragment.insert(
                            group + (new_count,) + tuple(new_sums)
                        )
                        record_undo(
                            lambda f=fragment, r=new_rowid: f.delete(r),
                            node=home, tag=Tag.VIEW, writes=1,
                            description=f"undo {name} aggregate rewrite",
                        )
                    else:
                        view.row_count -= 1
                        record_undo(
                            lambda v=view: setattr(v, "row_count", v.row_count + 1),
                            description=f"restore {name} row_count",
                        )
                    node.ledger.charge(home, Op.INSERT, Tag.VIEW)
                else:
                    if count_delta < 0:  # pragma: no cover - guarded upstream
                        raise ViewDefinitionError(
                            f"aggregate group {group!r} underflow in {name!r}"
                        )
                    if count_delta > 0:
                        new_rowid = fragment.insert(
                            group + (count_delta,) + tuple(sums_delta)
                        )
                        record_undo(
                            lambda f=fragment, r=new_rowid: f.delete(r),
                            node=home, tag=Tag.VIEW, writes=1,
                            description=f"undo {name} aggregate insert",
                        )
                        node.ledger.charge(home, Op.INSERT, Tag.VIEW)
                        view.row_count += 1
                        record_undo(
                            lambda v=view: setattr(v, "row_count", v.row_count - 1),
                            description=f"restore {name} row_count",
                        )

    # -------------------------------------------------------------- reads

    def read_rows(self) -> List[Row]:
        """The view's declared output rows (groups + aggregate values)."""
        rows: List[Row] = []
        arity = len(self.spec.group_by)
        for node in self.cluster.nodes:
            for stored in node.scan(self.view_info.name):
                group = stored[:arity]
                count = stored[arity]
                sums = stored[arity + 1:]
                outputs: List[object] = list(group)
                for aggregate in self.spec.aggregates:
                    if aggregate.function is AggregateFunction.COUNT:
                        outputs.append(count)
                    else:
                        value = sums[self.sum_sources.index(aggregate.source)]
                        if aggregate.function is AggregateFunction.SUM:
                            outputs.append(value)
                        else:
                            outputs.append(value / count)
                rows.append(tuple(outputs))
        return rows


def aggregate_storage_schema(
    name: str, spec: AggregateSpec, bound: BoundView
) -> Schema:
    """Physical schema of the stored group rows: the group columns
    (queryable), the shared ``_count``, then one ``_sum_<i>`` per distinct
    SUM/AVG input, in first-appearance order.  A synthetic ``_group`` index
    over the group-column prefix gives each group an O(1) home-node probe.
    """
    columns = [
        Column(f"g{i}_{column}") for i, (_, column) in enumerate(spec.group_by)
    ]
    columns.append(Column("_count", int))
    seen = []
    for aggregate in spec.aggregates:
        if aggregate.source is not None and aggregate.source not in seen:
            seen.append(aggregate.source)
    for i, _ in enumerate(seen):
        columns.append(Column(f"_sum_{i}", float))
    return Schema(name, tuple(columns))


def define_aggregate_join_view(
    cluster,
    definition: JoinViewDefinition,
    spec: AggregateSpec,
    method: "MaintenanceMethod | str" = MaintenanceMethod.AUXILIARY,
    strategy: "JoinStrategy | str" = JoinStrategy.AUTO,
) -> ViewInfo:
    """CREATE an aggregate join view: ``SELECT group_by, aggregates FROM
    <definition's join> GROUP BY group_by``.

    ``definition.select`` is ignored — the needed columns are derived from
    the spec; ``definition.partitioning`` is ignored too (aggregate views
    hash-partition on the group key so each group has one home node).
    """
    cluster.catalog.ensure_name_free(definition.name)
    method = MaintenanceMethod.coerce(method)
    if isinstance(strategy, str):
        strategy = JoinStrategy(strategy)
    schemas = {
        name: cluster.catalog.relation(name).schema for name in definition.relations
    }
    join_definition = JoinViewDefinition(
        name=definition.name,
        relations=definition.relations,
        conditions=definition.conditions,
        select=tuple(spec.needed_items()),
    )
    bound = BoundView(join_definition, schemas)

    from .auxiliary import provision_auxiliary
    from .global_index import provision_global_index
    from .hybrid import provision_hybrid
    from .naive import provision_naive
    from .optimizer import MaintenancePlanner

    if method is MaintenanceMethod.NAIVE:
        provision_naive(cluster, bound)
    elif method is MaintenanceMethod.AUXILIARY:
        provision_auxiliary(cluster, bound)
    elif method is MaintenanceMethod.HYBRID:
        provision_hybrid(cluster, bound)
    else:
        provision_global_index(cluster, bound)

    storage_schema = aggregate_storage_schema(definition.name, spec, bound)
    for node in cluster.nodes:
        fragment = node.create_fragment(storage_schema)
        # The _group index maps the packed group-key tuple to its row; the
        # index key extractor is the group-column prefix.
        index = _GroupIndex(fragment.table, len(spec.group_by))
        fragment.indexes["_group"] = index
    partitioner = _GroupPartitioner(storage_schema, cluster.num_nodes, len(spec.group_by))

    planner = MaintenancePlanner(cluster, bound, method)
    view_info = ViewInfo(
        name=definition.name,
        definition=join_definition,
        schema=storage_schema,
        partitioner=partitioner,
        maintainer=None,
        method=f"aggregate/{method.value}",
    )
    maintainer = AggregateViewMaintainer(
        cluster, view_info, bound, planner, spec, strategy
    )
    view_info.maintainer = maintainer
    cluster.catalog.add_view(view_info, list(definition.relations))

    # Initial materialization from current contents (uncharged).
    counter = bound.evaluate(
        {name: cluster.scan_relation(name) for name in definition.relations}
    )
    boot: Dict[Row, List[float]] = {}
    group_positions = tuple(
        bound.select.index(item) for item in spec.group_by
    )
    sum_positions = tuple(
        bound.select.index(item) for item in maintainer.sum_sources
    )
    for row, multiplicity in counter.items():
        group = tuple(row[i] for i in group_positions)
        entry = boot.setdefault(group, [0, *([0.0] * len(sum_positions))])
        entry[0] += multiplicity
        for offset, position in enumerate(sum_positions):
            entry[1 + offset] += multiplicity * float(row[position])
    for group, entry in boot.items():
        home = partitioner.node_of_key(group)
        cluster.nodes[home].fragment(definition.name).insert(  # repro: no-undo=DDL backfill; view creation is not a transactional statement
            group + (int(entry[0]),) + tuple(entry[1:])
        )
        view_info.row_count += 1
    return view_info


def _aggregate_maintainer(cluster, view_name: str) -> "AggregateViewMaintainer":
    """The view's aggregate maintainer, unwrapping a deferred wrapper."""
    maintainer = cluster.catalog.view(view_name).maintainer
    inner = getattr(maintainer, "inner", None)
    if inner is not None:
        maintainer = inner
    if not isinstance(maintainer, AggregateViewMaintainer):
        raise ViewDefinitionError(f"{view_name!r} is not an aggregate view")
    return maintainer


def aggregate_rows(cluster, view_name: str) -> List[Row]:
    """The declared output rows of an aggregate join view."""
    return _aggregate_maintainer(cluster, view_name).read_rows()


def recompute_aggregate(cluster, view_name: str) -> List[Row]:
    """Ground truth: the aggregate outputs recomputed from the bases."""
    maintainer = _aggregate_maintainer(cluster, view_name)
    bound = maintainer.bound
    spec = maintainer.spec
    counter = bound.evaluate(
        {name: cluster.scan_relation(name) for name in bound.definition.relations}
    )
    group_positions = tuple(bound.select.index(item) for item in spec.group_by)
    groups: Dict[Row, Dict[SelectItem, float]] = {}
    counts: Dict[Row, int] = {}
    for row, multiplicity in counter.items():
        group = tuple(row[i] for i in group_positions)
        counts[group] = counts.get(group, 0) + multiplicity
        sums = groups.setdefault(group, {})
        for item in maintainer.sum_sources:
            position = bound.select.index(item)
            sums[item] = sums.get(item, 0.0) + multiplicity * float(row[position])
    rows: List[Row] = []
    for group, count in counts.items():
        outputs: List[object] = list(group)
        for aggregate in spec.aggregates:
            if aggregate.function is AggregateFunction.COUNT:
                outputs.append(count)
            elif aggregate.function is AggregateFunction.SUM:
                outputs.append(groups[group][aggregate.source])
            else:
                outputs.append(groups[group][aggregate.source] / count)
        rows.append(tuple(outputs))
    return rows


class _GroupIndex:
    """A LocalIndex-alike keyed by the group-column prefix of stored rows."""

    def __init__(self, table, group_arity: int) -> None:
        self.table = table
        self.group_arity = group_arity
        self.clustered = False
        self.column = "_group"
        self._entries: Dict[Row, List[int]] = {}

    def key_of(self, row: Row) -> Row:
        return tuple(row[: self.group_arity])

    def on_insert(self, rowid: int, row: Row) -> None:
        self._entries.setdefault(self.key_of(row), []).append(rowid)

    def on_delete(self, rowid: int, row: Row) -> None:
        key = self.key_of(row)
        self._entries[key].remove(rowid)
        if not self._entries[key]:
            del self._entries[key]

    def search(self, key: Row) -> List[int]:
        return list(self._entries.get(tuple(key), ()))

    def distinct_keys(self) -> int:
        return len(self._entries)


class _GroupPartitioner:
    """Hash placement on the packed group-key tuple."""

    def __init__(self, schema: Schema, num_nodes: int, group_arity: int) -> None:
        self.schema = schema
        self.num_nodes = num_nodes
        self.group_arity = group_arity
        self.column = "_group"

    @property
    def is_hash(self) -> bool:
        return True

    def node_of_key(self, key) -> int:
        from ..cluster.partitioning import stable_hash

        return stable_hash(tuple(key)) % self.num_nodes

    def node_of_row(self, row: Row) -> int:
        return self.node_of_key(row[: self.group_arity])
