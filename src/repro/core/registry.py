"""View registration: wire a definition, a method, and a cluster together.

:func:`define_join_view` is the library's CREATE VIEW: it binds the
definition against the catalog, provisions whatever the chosen method needs
(local indexes, auxiliary relations, global indexes), creates the view's
partitioned storage, registers the maintainer, and materializes the initial
contents from the current base data (an uncharged offline build, like the
paper's pre-built orders_1/lineitem_1 copies).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..cluster.catalog import ViewInfo
from .auxiliary import provision_auxiliary
from .global_index import provision_global_index
from .maintenance import JoinStrategy, JoinViewMaintainer, MaintenanceMethod
from .naive import provision_naive
from .optimizer import MaintenancePlanner
from .statistics import StatisticsCache
from .view import BoundView, JoinViewDefinition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.cluster import Cluster


def define_join_view(
    cluster: "Cluster",
    definition: JoinViewDefinition,
    method: "MaintenanceMethod | str" = MaintenanceMethod.AUXILIARY,
    strategy: "JoinStrategy | str" = JoinStrategy.AUTO,
    trim_auxiliaries: bool = False,
    clustered_base_indexes: bool = False,
    statistics: Optional[StatisticsCache] = None,
    initial_load: bool = True,
    hybrid_options: Optional[dict] = None,
) -> ViewInfo:
    """Create and register a maintained join view on ``cluster``.

    Parameters
    ----------
    definition:
        The view: relations, equi-join conditions, select list, placement.
    method:
        ``"naive"``, ``"auxiliary"``, or ``"global_index"``.
    strategy:
        How deltas join with partners: ``"auto"`` (cost-based, the default),
        ``"inl"`` (always index nested loops), ``"sort_merge"``.
    trim_auxiliaries:
        With the auxiliary method, keep only the columns this view needs in
        each created AR (paper §2.1.2's storage minimization).
    clustered_base_indexes:
        With the naive method, request clustered indexes on the probed join
        attributes where the fragment is not already clustered otherwise.
    initial_load:
        Materialize the view from the current base contents (uncharged).
    hybrid_options:
        With the hybrid method, keyword arguments for
        :func:`repro.core.hybrid.provision_hybrid` (``ar_row_budget``,
        per-relation ``choices``).
    """
    cluster.catalog.ensure_name_free(definition.name)
    method = MaintenanceMethod.coerce(method)
    if isinstance(strategy, str):
        strategy = JoinStrategy(strategy)
    schemas = {
        name: cluster.catalog.relation(name).schema for name in definition.relations
    }
    bound = BoundView(definition, schemas)

    if method is MaintenanceMethod.NAIVE:
        provision_naive(cluster, bound, clustered_indexes=clustered_base_indexes)
    elif method is MaintenanceMethod.AUXILIARY:
        provision_auxiliary(cluster, bound, trim=trim_auxiliaries)
    elif method is MaintenanceMethod.HYBRID:
        from .hybrid import provision_hybrid

        provision_hybrid(cluster, bound, **(hybrid_options or {}))
    else:
        provision_global_index(cluster, bound)

    partitioner = cluster.create_view_storage(bound.schema, definition.partitioning)
    planner = MaintenancePlanner(cluster, bound, method, statistics)
    view_info = ViewInfo(
        name=definition.name,
        definition=definition,
        schema=bound.schema,
        partitioner=partitioner,
        maintainer=None,  # set right below; ViewInfo is the shared handle
        method=method.value,
    )
    maintainer = JoinViewMaintainer(cluster, view_info, bound, planner, strategy)
    view_info.maintainer = maintainer
    cluster.catalog.add_view(view_info, list(definition.relations))

    if initial_load:
        _materialize(cluster, view_info, bound)
    return view_info


def _materialize(cluster: "Cluster", view_info: ViewInfo, bound: BoundView) -> None:  # repro: no-undo=DDL backfill; view creation is not a transactional statement
    """Load the view's current contents without charging the ledger."""
    contents = {
        name: cluster.scan_relation(name) for name in bound.definition.relations
    }
    counter = bound.evaluate(contents)
    for row, multiplicity in counter.items():
        for _ in range(multiplicity):
            destination = view_info.partitioner.node_of_row(row)
            cluster.nodes[destination].fragment(view_info.name).insert(row)
            view_info.row_count += 1


def recompute_view(cluster: "Cluster", view_name: str):
    """The view's contents recomputed from scratch (bag), for verification."""
    view_info = cluster.catalog.view(view_name)
    definition: JoinViewDefinition = view_info.definition  # type: ignore[assignment]
    schemas = {
        name: cluster.catalog.relation(name).schema for name in definition.relations
    }
    bound = BoundView(definition, schemas)
    contents = {
        name: cluster.scan_relation(name) for name in definition.relations
    }
    return bound.evaluate(contents)
