"""Figure 7: TW for a single-tuple insert vs number of data server nodes.

Paper claims reproduced here: the auxiliary-relation TW is a flat 3 I/Os,
the naive TW grows linearly with L, and the global-index TW plateaus at
3 + N once L > N.  The simulator's measured TW must equal the closed form
at every point.
"""

import pytest

from repro.bench import agreement_ratio, experiments
from repro.model import MethodVariant

from _util import run_once

AR = MethodVariant.AUXILIARY.value
NAIVE_CL = MethodVariant.NAIVE_CLUSTERED.value
GI_NCL = MethodVariant.GI_NONCLUSTERED.value


def test_figure7(benchmark, save_result):
    result = run_once(
        benchmark, lambda: experiments.figure7(node_counts=(1, 2, 4, 8, 16, 32, 64, 128))
    )
    save_result(result)
    rows = result.as_dicts()
    assert all(row[f"{AR} [model]"] == 3.0 for row in rows)
    assert rows[-1][f"{GI_NCL} [model]"] == 13.0
    assert rows[-1][f"{NAIVE_CL} [model]"] == 128.0
    for variant in MethodVariant:
        ratio = agreement_ratio(
            result.column(f"{variant.value} [model]"),
            result.column(f"{variant.value} [measured]"),
        )
        assert ratio == pytest.approx(1.0), variant
    benchmark.extra_info["ar_tw"] = rows[-1][f"{AR} [measured]"]
    benchmark.extra_info["naive_tw_at_128"] = rows[-1][f"{NAIVE_CL} [measured]"]
