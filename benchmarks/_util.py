"""Benchmark helpers importable from the bench files."""


def run_once(benchmark, fn):
    """Benchmark an experiment with a single measured round.

    Figure regeneration is deterministic work, not a microbenchmark; one
    round gives the wall cost of reproducing the figure without inflating
    the suite's runtime.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
