"""Extension: the §3.1.1 robustness claim, checked.

"Our conclusions would remain unchanged by small variations in these
assumptions" — the TW ordering AR ≤ GI ≤ naive must survive perturbations
of every primitive-operation weight, including billing the SENDs the paper
zeroes out.
"""

from repro.bench import experiments

from _util import run_once


def test_cost_sensitivity(benchmark, save_result):
    result = run_once(
        benchmark, lambda: experiments.ext_cost_sensitivity(num_nodes=32)
    )
    save_result(result)
    for row in result.rows:
        assert row[4] == "yes", f"ordering broke under weights {row[0]!r}"
    # The paper's exact weights give the quoted constants.
    paper_row = result.rows[0]
    assert paper_row[1] == 3.0 and paper_row[2] == 13.0
