"""Extension: the cost of the figures' (b) variants.

Every maintenance figure in the paper comes in an (a) form — the view
partitioned on an attribute of A — and a (b) form with no exploitable
placement.  Inserts differ only in routing; deletes are where placement
pays: the hash-placed view probes one home node per derived tuple, the
round-robin view hunts across all L.
"""

from repro.bench import experiments

from _util import run_once


def test_view_placement(benchmark, save_result):
    result = run_once(
        benchmark,
        lambda: experiments.ext_view_placement(num_nodes=16, num_changes=64),
    )
    save_result(result)
    rows = {row[0]: row for row in result.rows}
    hashed = rows["hash on A.e (variant a)"]
    scattered = rows["round-robin (variant b)"]
    # Same insert-side cost (routing is SEND-only, free at paper weights)...
    assert hashed[1] == scattered[1]
    # ...but deletes pay for placement-blindness on both metrics.
    assert scattered[2] > 2 * hashed[2]
    assert scattered[3] > 2 * hashed[3]
