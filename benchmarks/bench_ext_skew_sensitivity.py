"""Extension: skew sensitivity of the AR method (assumption-9 ablation).

The analytical model's ⌈A/L⌉ busiest-node share relies on uniformly
distributed insert keys.  This ablation replaces them with Zipf keys and
measures how the AR response inflates while the naive method — which never
exploited placement in the first place — stays put.
"""

from repro.bench import experiments

from _util import run_once


def test_skew_sensitivity(benchmark, save_result):
    result = run_once(
        benchmark,
        lambda: experiments.ext_skew_sensitivity(
            skews=(0.0, 1.0, 2.0), num_nodes=32, num_inserted=512
        ),
    )
    save_result(result)
    rows = result.as_dicts()
    inflation = [row["AR inflation"] for row in rows]
    # Inflation grows monotonically with skew and becomes substantial.
    assert inflation == sorted(inflation)
    assert inflation[-1] > 5 * inflation[0]
    # The naive method stays within a modest band across skews.
    naive = [row["naive measured [I/Os]"] for row in rows]
    assert max(naive) < 1.5 * min(naive)
