"""Extension: the space side of the paper's space/speed trade.

Naive stores nothing extra, the GI stores an entry per base tuple, the AR
stores a row copy per base tuple — and §2.1.2's projection trimming
shrinks the AR's width to the columns its views actually need.
"""

from repro.bench import experiments

from _util import run_once


def test_storage_overhead(benchmark, save_result):
    result = run_once(
        benchmark, lambda: experiments.ext_storage_overhead(num_nodes=8)
    )
    save_result(result)
    by_method = {row[0]: row for row in result.rows}
    assert by_method["naive"][2] == 0
    assert by_method["global_index"][2] == 640
    assert by_method["auxiliary"][2] == 640
    # Trimming keeps the tuple count but cuts the stored fields.
    assert by_method["auxiliary (trimmed)"][2] == by_method["auxiliary"][2]
    assert by_method["auxiliary (trimmed)"][3] < by_method["auxiliary"][3]
