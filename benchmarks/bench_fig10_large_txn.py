"""Figure 10: response time of one 6,500-tuple transaction (sort-merge).

Headline claim — the paper's one inversion: when the transaction inserts
about as many tuples as base relation B has pages, every node's work is a
pass over its B fragment, and the naive method with clustered base
relations beats both the AR and GI methods (which still pay their
structure co-updates).
"""

import pytest

from repro.bench import agreement_ratio, experiments
from repro.model import MethodVariant

from _util import run_once

AR = MethodVariant.AUXILIARY.value
NAIVE_CL = MethodVariant.NAIVE_CLUSTERED.value
GI_CL = MethodVariant.GI_CLUSTERED.value


def test_figure10(benchmark, save_result):
    result = run_once(
        benchmark,
        lambda: experiments.figure10(node_counts=(1, 4, 16, 64), num_inserted=6_500),
    )
    save_result(result)
    for row in result.as_dicts():
        assert row[f"{NAIVE_CL} [measured]"] < row[f"{AR} [measured]"]
        assert row[f"{NAIVE_CL} [measured]"] < row[f"{GI_CL} [measured]"]
    for variant in MethodVariant:
        assert agreement_ratio(
            result.column(f"{variant.value} [model]"),
            result.column(f"{variant.value} [measured]"),
        ) == pytest.approx(1.0)
