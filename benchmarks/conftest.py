"""Shared helpers for the per-figure benchmark targets.

Each benchmark regenerates one table/figure of the paper: the benchmarked
callable produces the experiment's rows, and the rendered series is saved
under ``benchmarks/results/`` so the reproduction artefacts survive the
run (EXPERIMENTS.md links them).
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def save_result():
    """Persist a rendered experiment next to the benchmarks."""

    def save(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        name = result.experiment.lower().replace(" ", "_").replace("(", "").replace(")", "")
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(result.render() + "\n")
        return path

    return save
