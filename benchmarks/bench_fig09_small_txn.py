"""Figure 9: response time of one 400-tuple transaction (index-join regime).

Headline claims: the AR response falls as 3·⌈A/L⌉ (fast with more nodes);
naive with a clustered index stays flat at A because every node still
probes every delta tuple.
"""

import pytest

from repro.bench import agreement_ratio, experiments
from repro.model import MethodVariant

from _util import run_once

AR = MethodVariant.AUXILIARY.value
NAIVE_CL = MethodVariant.NAIVE_CLUSTERED.value


def test_figure9(benchmark, save_result):
    result = run_once(
        benchmark,
        lambda: experiments.figure9(node_counts=(1, 2, 4, 8, 16, 32), num_inserted=400),
    )
    save_result(result)
    ar = result.column(f"{AR} [measured]")
    assert ar == sorted(ar, reverse=True)
    assert ar[0] == 1200.0 and ar[-1] == pytest.approx(39.0)
    assert all(
        value == 400.0 for value in result.column(f"{NAIVE_CL} [measured]")
    )
    assert agreement_ratio(
        result.column(f"{AR} [model]"), ar
    ) == pytest.approx(1.0)
