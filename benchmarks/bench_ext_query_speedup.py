"""Extension: the query speed-up that justifies materialized views.

The paper's opening line — "materialized views are used to speed up query
execution" — made measurable: the same customer⋈orders query answered by
a parallel base join, by a view scan, and by a pinned-key view probe.
"""

from repro.bench import experiments

from _util import run_once


def test_query_speedup(benchmark, save_result):
    result = run_once(
        benchmark,
        lambda: experiments.ext_query_speedup(num_nodes=8, scale=0.01),
    )
    save_result(result)
    by_query = {row[0]: row for row in result.rows}
    base = by_query["base join (full)"]
    view = by_query["materialized view (full)"]
    probe = next(row for name, row in by_query.items() if name.startswith("pinned"))
    # View scan beats the base join on both metrics; the probe is cheapest.
    assert view[2] < base[2] and view[3] <= base[3]
    assert probe[2] <= view[2]
    benchmark.extra_info["view_scan_speedup"] = base[2] / view[2]
