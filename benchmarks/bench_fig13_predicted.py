"""Figure 13: predicted view maintenance time for JV1 and JV2.

Headline claims: maintenance of both TPC-R views is predicted in units of
128 I/Os for a 128-customer insert; the AR method's time falls as 1/L
while the naive method's stays near-flat, so the AR speedup grows with the
number of data server nodes; JV2 costs about twice JV1 under AR.
"""

import pytest

from repro.bench import agreement_ratio, experiments

from _util import run_once

LINES = (
    "AR method for JV1",
    "naive method for JV1",
    "AR method for JV2",
    "naive method for JV2",
)


def test_figure13(benchmark, save_result):
    result = run_once(
        benchmark,
        lambda: experiments.figure13(node_counts=(2, 4, 8), delta=128, scale=0.005),
    )
    save_result(result)
    rows = result.as_dicts()
    for line in LINES:
        assert agreement_ratio(
            result.column(f"{line} [model]"),
            result.column(f"{line} [measured]"),
        ) == pytest.approx(1.0), line
    speedups = [
        row["naive method for JV1 [measured]"] / row["AR method for JV1 [measured]"]
        for row in rows
    ]
    assert speedups == sorted(speedups)  # grows with L
    for row in rows:
        assert row["AR method for JV2 [measured]"] == pytest.approx(
            2 * row["AR method for JV1 [measured]"]
        )
