"""Table 1: test data set I — cardinalities and sizes.

Regenerates the paper's dataset at a configurable scale with its exact
ratios (orders = 10 x customers, lineitem = 4 x orders) and join behaviour
(1 matching order per customer, 4 lineitems per order).
"""

from collections import Counter

from repro.bench import experiments
from repro.workloads import TpcrGenerator

from _util import run_once


def test_table1(benchmark, save_result):
    result = run_once(benchmark, lambda: experiments.table1(scale=0.01))
    save_result(result)
    rows = {row[0]: row for row in result.rows}
    assert rows["customer"][1] == 150_000 and rows["customer"][3] == 1_500
    assert rows["orders"][3] == 15_000
    assert rows["lineitem"][3] == 60_000
    # Join fan-outs underpinning Figures 13/14.
    dataset = TpcrGenerator(scale=0.01).generate()
    per_customer = Counter(order[1] for order in dataset.orders)
    assert all(per_customer[c[0]] == 1 for c in dataset.customers)
    per_order = Counter(item[1] for item in dataset.lineitems)
    assert all(per_order[o[0]] == 4 for o in dataset.orders)
