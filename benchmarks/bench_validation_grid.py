"""The reproduction's central validation, as a benchmark artifact.

Sweeps (L, N, variant) and asserts the simulator's measured costs equal
the paper's closed forms: exactly, for both TW and response time, when the
workload realizes the model's uniformity assumption exactly.
"""

import pytest

from repro.bench import validation_grid

from _util import run_once


def test_validation_grid(benchmark, save_result):
    result = run_once(benchmark, lambda: validation_grid())
    save_result(result)
    for row in result.rows:
        assert row[1] == pytest.approx(1.0), f"TW mismatch for {row[0]}"
        assert row[2] == pytest.approx(1.0), f"response mismatch for {row[0]}"
