"""Figure 12: execution time vs inserted tuples, 1..300 detail (L = 128).

Headline claim: the AR method's response is step-wise — it jumps exactly
when ⌈A/L⌉ grows, because the busiest node's share increases by one tuple.
The simulator reproduces the steps because inserted keys are uniformly
distributed over nodes, exactly the paper's assumption.
"""

from repro.bench import experiments
from repro.model import MethodVariant

from _util import run_once

AR = MethodVariant.AUXILIARY.value


def test_figure12(benchmark, save_result):
    result = run_once(
        benchmark,
        lambda: experiments.figure12(
            insert_counts=(1, 64, 128, 129, 200, 256, 257, 300), num_nodes=128
        ),
    )
    save_result(result)
    by_inserted = {row["inserted"]: row for row in result.as_dicts()}
    assert by_inserted[1][f"{AR} [measured]"] == 3.0
    assert by_inserted[128][f"{AR} [measured]"] == 3.0
    assert by_inserted[129][f"{AR} [measured]"] == 6.0
    assert by_inserted[256][f"{AR} [measured]"] == 6.0
    assert by_inserted[257][f"{AR} [measured]"] == 9.0
    assert by_inserted[300][f"{AR} [measured]"] == 9.0
