"""Extension: the §4 cost-model method chooser.

The paper's conclusion: "it is impossible to say that one method is always
the best ... our analytical model could form the basis for a cost model
that would enable a system to choose the best approach automatically."
This bench sweeps the update activity and checks the chooser transitions
from AR (small updates) to naive-with-clustered-index (huge updates).
"""

from repro.bench import experiments

from _util import run_once


def test_method_chooser(benchmark, save_result):
    result = run_once(
        benchmark,
        lambda: experiments.ext_method_chooser(
            update_sizes=(1, 10, 100, 1_000, 10_000, 100_000), num_nodes=32
        ),
    )
    save_result(result)
    recommended = result.column("recommended")
    assert "auxiliary" in recommended
    assert recommended[-1] == "naive"
    # Once naive takes over it stays (monotone transition in update size).
    first_naive = recommended.index("naive", 1)
    assert all(r == "naive" for r in recommended[first_naive:])
