"""Figure 8: TW for a single-tuple insert vs join fan-out N (L = 32).

Headline claim: the global-index method is the *intermediate* method — its
TW tracks the auxiliary relation's for small N and the naive method's for
large N.
"""

import pytest

from repro.bench import agreement_ratio, experiments
from repro.model import MethodVariant

from _util import run_once

AR = MethodVariant.AUXILIARY.value
NAIVE_NCL = MethodVariant.NAIVE_NONCLUSTERED.value
GI_NCL = MethodVariant.GI_NONCLUSTERED.value


def test_figure8(benchmark, save_result):
    result = run_once(
        benchmark,
        lambda: experiments.figure8(fanouts=(1, 2, 5, 10, 20, 50, 100), num_nodes=32),
    )
    save_result(result)
    rows = result.as_dicts()
    for row in rows:
        assert row[f"{AR} [measured]"] <= row[f"{GI_NCL} [measured]"]
        assert row[f"{GI_NCL} [measured]"] <= row[f"{NAIVE_NCL} [measured]"]
    low, high = rows[0], rows[-1]
    assert abs(low[f"{GI_NCL} [measured]"] - low[f"{AR} [measured]"]) <= 1.0
    assert (
        high[f"{NAIVE_NCL} [measured]"] - high[f"{GI_NCL} [measured]"]
        < high[f"{GI_NCL} [measured]"] - high[f"{AR} [measured]"]
    )
    for variant in MethodVariant:
        assert agreement_ratio(
            result.column(f"{variant.value} [model]"),
            result.column(f"{variant.value} [measured]"),
        ) == pytest.approx(1.0)
