"""Extension: aggregate join views vs plain join views.

The join delta is computed identically under either view kind (same AR
plan, same TW); the aggregate view then folds N·A join tuples into a few
group-row updates, collapsing the view-side cost and storage — the reason
warehouse dashboards materialize aggregates, not raw joins.
"""

from repro.bench import experiments

from _util import run_once


def test_aggregate_views(benchmark, save_result):
    result = run_once(
        benchmark,
        lambda: experiments.ext_aggregate_views(
            num_nodes=8, num_inserted=128, fanout=10, num_groups=16
        ),
    )
    save_result(result)
    rows = {row[0]: row for row in result.rows}
    plain, agg = rows["plain join view"], rows["aggregate view"]
    assert plain[1] == agg[1]          # identical join-side TW
    assert agg[2] < plain[2] / 10      # view-side cost collapses
    assert agg[3] <= 16 < plain[3]     # group rows vs raw join tuples
    benchmark.extra_info["view_side_saving"] = plain[2] / agg[2]
