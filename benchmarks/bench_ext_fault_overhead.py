"""Extension: the robustness premium of fault-tolerant maintenance.

The paper's model assumes a fault-free cluster.  This benchmark prices the
departure: the same insert stream replayed under message drops (retry with
backoff), message duplication (receiver dedup), probe failures (retried
probes), and a mid-stream node crash (rollback, queue, replay at
recovery).  Every extra attempt is charged under the paper's I/O model, so
"vs fault-free" is exactly what fault tolerance costs each method — and the
consistency auditor certifies that none of it corrupted derived state.
"""

from repro.bench import experiments

from _util import run_once


def test_fault_overhead(benchmark, save_result):
    result = run_once(benchmark, lambda: experiments.ext_fault_overhead())
    save_result(result)
    rows = result.as_dicts()
    # Recovery must leave every derived structure equal to a from-scratch
    # recomputation, in every (method, fault regime) cell.
    assert all(row["consistent"] == "yes" for row in rows)
    by_cell = {(row["method"], row["fault regime"]): row for row in rows}
    for method in ("naive", "auxiliary", "global_index"):
        # Fault-free is the baseline by construction.
        assert by_cell[(method, "fault-free")]["vs fault-free"] == 1.0
        # Faulty regimes never get cheaper than fault-free.
        for regime in (
            "message drops", "message duplication", "probe failures",
            "crash + recovery",
        ):
            assert by_cell[(method, regime)]["vs fault-free"] >= 1.0
    # Drops really retried, duplicates really duplicated, crashes really
    # rolled statements back — for the chatty methods at least.
    assert by_cell[("naive", "message drops")]["retries"] > 0
    assert by_cell[("naive", "message duplication")]["duplicates"] > 0
    assert by_cell[("naive", "crash + recovery")]["rollbacks"] > 0
    assert by_cell[("global_index", "crash + recovery")]["rollbacks"] > 0


def test_failover_overhead(benchmark, save_result):
    result = run_once(benchmark, lambda: experiments.ext_failover_overhead())
    save_result(result)
    rows = result.as_dicts()
    assert all(row["consistent"] == "yes" for row in rows)
    by_cell = {(row["method"], row["scenario"]): row for row in rows}
    for method in ("naive", "auxiliary", "global_index"):
        assert by_cell[(method, "bare")]["vs bare"] == 1.0
        # Replica upkeep costs something but only ships replica traffic.
        upkeep = by_cell[(method, "k=2 upkeep")]
        assert upkeep["vs bare"] > 1.0
        assert upkeep["replica TW"] > 0
        assert upkeep["migrate TW"] == 0
        # Failover adds migration + replay on top of the upkeep premium.
        failover = by_cell[(method, "k=2 + failover")]
        assert failover["vs bare"] > upkeep["vs bare"]
        assert failover["migrate TW"] > 0
        assert failover["replayed"] > 0
