"""Figure 11: response time vs number of inserted tuples (L = 128).

Headline claims: with the join algorithm chosen by cost, each method's
curve flattens at its sort-merge plateau; the naive method flattens first,
the GI method later, the AR method last (near |B| pages) — and beyond that
point AR is worse than naive.
"""

from repro.bench import experiments
from repro.model import MethodVariant, paper_scenario, sort_merge_crossover

from _util import run_once

AR = MethodVariant.AUXILIARY.value
NAIVE_CL = MethodVariant.NAIVE_CLUSTERED.value


def test_figure11(benchmark, save_result):
    result = run_once(
        benchmark,
        lambda: experiments.figure11(
            insert_counts=(1, 10, 100, 500, 1_000, 2_000, 5_000, 10_000, 40_000, 70_000),
            num_nodes=128,
            measured_limit=2_000,
        ),
    )
    save_result(result)
    rows = result.as_dicts()
    naive = [row[f"{NAIVE_CL} [model]"] for row in rows]
    ar = [row[f"{AR} [model]"] for row in rows]
    # Naive plateaus; AR keeps growing past it and ends higher.
    assert naive[-1] == naive[-4]
    assert ar[-1] > naive[-1]
    # Crossover ordering (the flattening points).
    params = paper_scenario(128)
    assert (
        sort_merge_crossover(MethodVariant.NAIVE_CLUSTERED, params)
        < sort_merge_crossover(MethodVariant.GI_CLUSTERED, params)
        < sort_merge_crossover(MethodVariant.AUXILIARY, params)
    )
    benchmark.extra_info["ar_crossover"] = sort_merge_crossover(
        MethodVariant.AUXILIARY, params
    )
