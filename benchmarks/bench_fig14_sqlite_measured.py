"""Figure 14: real view maintenance time on the commercial-RDBMS stand-in.

The paper measured NCR Teradata on 2/4/8 data servers; this repo measures
a cluster of SQLite partitions with the same SQL-rewriting methodology.
Headline claims: the AR method beats the naive method for both JV1 and
JV2 at every node count, and its advantage grows with the number of nodes
(the AR per-node work falls as 1/L while the naive method's stays flat).
"""

from repro.bench import experiments

from _util import run_once


def test_figure14(benchmark, save_result):
    result = run_once(
        benchmark,
        lambda: experiments.figure14(
            node_counts=(2, 4, 8), delta=512, scale=0.05, repeats=7
        ),
    )
    save_result(result)
    rows = result.as_dicts()
    # Millisecond medians jitter at L = 2 where the gap is thinnest, so the
    # per-point ordering is asserted where the paper's effect is strongest
    # (the largest node count) and in aggregate across the sweep.
    widest = rows[-1]
    assert widest["AR method for JV1 [ms]"] < widest["naive method for JV1 [ms]"]
    assert widest["AR method for JV2 [ms]"] < widest["naive method for JV2 [ms]"]
    for view in ("JV1", "JV2"):
        ar = sum(row[f"AR method for {view} [ms]"] for row in rows)
        naive = sum(row[f"naive method for {view} [ms]"] for row in rows)
        assert ar < naive, view
    speedups = [
        row["naive method for JV1 [ms]"] / row["AR method for JV1 [ms]"]
        for row in rows
    ]
    benchmark.extra_info["jv1_speedup_by_nodes"] = speedups
    # The trend the paper reports: speedup at 8 nodes exceeds speedup at 2.
    assert speedups[-1] > speedups[0]
