"""Extension: the paper's unplotted large-update observation (§3.3).

On Teradata the authors found naive and AR "became comparable" for large
updates and blamed buffering.  The SQLite partitions are fully
memory-resident — the extreme of that buffering — so the measured
naive/AR ratio sits far below the Lx the index-regime model predicts.
"""

from repro.bench import experiments

from _util import run_once


def test_large_updates(benchmark, save_result):
    num_nodes = 4
    result = run_once(
        benchmark,
        lambda: experiments.ext_large_update(
            deltas=(128, 512, 2_048, 8_192), num_nodes=num_nodes, scale=0.02
        ),
    )
    save_result(result)
    ratios = result.column("naive/AR ratio")
    # Far below the model's L ratio at every delta (buffering effect) ...
    assert all(ratio < num_nodes for ratio in ratios)
    # ... yet naive never actually wins on the join step.
    assert all(ratio > 0.8 for ratio in ratios)
