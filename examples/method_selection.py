"""Choosing a maintenance method automatically (paper §4).

"There are many factors that influence the performance of the three view
maintenance methods, e.g., the update activity on base relations and the
amount of available storage space.  For this reason, it is impossible to
say that one method is always the best."

This example runs the cost-model advisor across update sizes and storage
budgets and prints the recommendation matrix, then sanity-checks one
recommendation by actually executing all three methods.

Run:  python examples/method_selection.py
"""

from repro import MethodAdvisor
from repro.core import BoundView
from repro.costs import ascii_table
from repro.storage.pages import PageLayout
from repro.workloads.uniform import UniformJoinWorkload, build_cluster

LAYOUT = PageLayout(tuples_per_page=1, memory_pages=100)
NUM_NODES = 32


def make_advisor():
    workload = UniformJoinWorkload(num_keys=640, fanout=10, clustered=True)
    cluster = build_cluster(
        workload, num_nodes=NUM_NODES, method="naive", layout=LAYOUT
    )
    bound = BoundView(
        workload.definition("advised"),
        {
            "A": cluster.catalog.relation("A").schema,
            "B": cluster.catalog.relation("B").schema,
        },
    )
    return MethodAdvisor(cluster, bound), workload


def recommendation_matrix(advisor) -> None:
    update_sizes = (1, 10, 100, 1_000, 10_000, 100_000)
    budgets = (None, 10_000, 0)
    rows = []
    for update_size in update_sizes:
        row = [update_size]
        for budget in budgets:
            verdict = advisor.recommend(
                update_size,
                storage_budget_tuples=budget,
                clustered_base_indexes=True,
            )
            row.append(verdict.method.value)
        rows.append(row)
    print(ascii_table(
        ["update size", "unlimited storage", "10k tuples", "no extra storage"],
        rows,
    ))


def check_one_recommendation(advisor) -> None:
    update_size = 100
    verdict = advisor.recommend(update_size, clustered_base_indexes=True)
    print(f"\nadvisor for {update_size}-tuple transactions: {verdict.reason}\n")
    measured = {}
    for method in ("naive", "auxiliary", "global_index"):
        workload = UniformJoinWorkload(num_keys=640, fanout=10, clustered=True)
        cluster = build_cluster(
            workload, num_nodes=NUM_NODES, method=method, layout=LAYOUT
        )
        snapshot = cluster.insert("A", workload.a_rows(update_size))
        measured[method] = snapshot.maintenance_response_time()
    print("measured response per method (I/Os):")
    for method, response in sorted(measured.items(), key=lambda kv: kv[1]):
        marker = "  <- advisor's pick" if method == verdict.method.value else ""
        print(f"  {method:12s} {response:8.1f}{marker}")
    assert measured[verdict.method.value] == min(measured.values())


def workload_level_advice() -> None:
    """One level up: is the view worth materializing at all?"""
    from repro.core import BoundView, WorkloadAdvisor, WorkloadProfile
    from repro.workloads.uniform import UniformJoinWorkload, build_cluster

    workload = UniformJoinWorkload(num_keys=640, fanout=10, clustered=True)
    cluster = build_cluster(
        workload, num_nodes=NUM_NODES, method="naive", layout=LAYOUT
    )
    bound = BoundView(
        workload.definition("candidate"),
        {
            "A": cluster.catalog.relation("A").schema,
            "B": cluster.catalog.relation("B").schema,
        },
    )
    advisor = WorkloadAdvisor(cluster, bound, clustered_base_indexes=True)
    print("\nworkload-level advice (queries vs update transactions per hour):")
    for queries, updates in ((200, 10), (20, 200), (1, 5_000)):
        verdict = advisor.advise(
            WorkloadProfile(
                full_queries=queries,
                update_transactions=updates,
                tuples_per_update=8,
            )
        )
        print(f"  {queries:>5} queries / {updates:>5} updates: {verdict.explain()}")


def main() -> None:
    advisor, _ = make_advisor()
    print("recommended maintenance method by update size and storage budget")
    print(f"(L = {NUM_NODES}, |B| = 6,400 pages, N = 10, clustered indexes)\n")
    recommendation_matrix(advisor)
    check_one_recommendation(advisor)
    workload_level_advice()


if __name__ == "__main__":
    main()
