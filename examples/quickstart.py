"""Quickstart: define a maintained join view and watch what an insert costs.

Builds an 8-node parallel cluster with two base relations partitioned off
their join attributes (the paper's worst case), defines the same view under
each of the three maintenance methods, and inserts one tuple — printing the
total workload (TW) each method charges, which reproduces the headline
numbers of the paper's Figure 7 column for L = 8.

Run:  python examples/quickstart.py
"""

from repro import (
    Cluster,
    HashPartitioning,
    Schema,
    recompute_view,
    two_way_view,
)
from collections import Counter


def build_cluster(method: str) -> Cluster:
    cluster = Cluster(num_nodes=8)
    # A(a, c, e) partitioned on a; the view joins on A.c = B.d.
    cluster.create_relation(Schema.of("A", "a", "c", "e"), partitioned_on="a")
    cluster.create_relation(Schema.of("B", "b", "d", "f"), partitioned_on="b")
    # Pre-load B: every join key 0..9 has 5 matching tuples.
    cluster.insert("B", [(i, i % 10, f"payload-{i}") for i in range(50)])
    cluster.create_join_view(
        two_way_view("JV", "A", "c", "B", "d",
                     partitioning=HashPartitioning("e")),
        method=method,
        strategy="inl",
    )
    return cluster


def main() -> None:
    print("insert one tuple into A; differential maintenance cost per method")
    print("(L = 8 nodes, N = 5 matching B tuples)\n")
    for method in ("naive", "auxiliary", "global_index"):
        cluster = build_cluster(method)
        snapshot = cluster.insert("A", [(1, 3, "anything")])
        # Verify the maintained view equals the from-scratch join.
        assert Counter(cluster.view_rows("JV")) == recompute_view(cluster, "JV")
        print(f"  {method:12s}  TW = {snapshot.maintenance_workload():5.1f} I/Os"
              f"   (response {snapshot.maintenance_response_time():4.1f} I/Os,"
              f" view rows {len(cluster.view_rows('JV'))})")
    print("\nnaive broadcasts to all 8 nodes; auxiliary touches exactly one;")
    print("the global index visits only the nodes holding matches.")


if __name__ == "__main__":
    main()
