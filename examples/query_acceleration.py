"""Why pay for view maintenance at all: query acceleration.

The paper's very first sentence: "In a typical data warehouse,
materialized views are used to speed up query execution."  This example
answers the same analytical queries three ways — parallel base join, view
scan, single-node view probe — and then shows the full trade: the query
savings against the maintenance cost charged by the update stream.

Run:  python examples/query_acceleration.py
"""

from repro import Cluster
from repro.core.view import JoinCondition
from repro.costs import Tag, ascii_table
from repro.query import Comparison, Filter, Query, QueryEngine
from repro.workloads import TpcrGenerator, jv1_definition, load_into

NUM_NODES = 8
SCALE = 0.01


def main() -> None:
    cluster = Cluster(NUM_NODES)
    generator = TpcrGenerator(scale=SCALE)
    dataset = generator.generate()
    load_into(cluster, dataset)
    cluster.create_join_view(jv1_definition(), method="auxiliary")
    engine = QueryEngine(cluster)

    join_query = Query(
        relations=("customer", "orders"),
        select=(("customer", "custkey"), ("orders", "totalprice")),
        conditions=(JoinCondition("customer", "custkey", "orders", "custkey"),),
    )
    lookup = Query(
        relations=("customer", "orders"),
        select=(("customer", "custkey"), ("orders", "totalprice")),
        conditions=(JoinCondition("customer", "custkey", "orders", "custkey"),),
        filters=(Filter("customer", "custkey", Comparison.EQ, 42),),
    )

    base = engine.answer_from_base(join_query)
    auto = engine.answer(join_query)
    pinned = engine.answer(lookup)
    print("the same customer-orders join, three ways "
          f"(L = {NUM_NODES}, {len(dataset.orders):,} orders):\n")
    print(ascii_table(
        ["plan", "rows", "total I/Os", "response I/Os"],
        [
            [base.plan, len(base.rows), base.cost_ios, base.response_ios],
            [auto.plan, len(auto.rows), auto.cost_ios, auto.response_ios],
            [pinned.plan, len(pinned.rows), pinned.cost_ios, pinned.response_ios],
        ],
    ))
    assert sorted(base.rows) == sorted(auto.rows)

    # The other side of the ledger: what keeping the view fresh costs.
    delta = generator.new_customers(32, starting_at=len(dataset.customers))
    snapshot = cluster.insert("customer", delta)
    maintain = snapshot.maintenance_workload()
    saved = base.cost_ios - auto.cost_ios
    print(f"\nmaintaining the view through a 32-tuple insert cost "
          f"{maintain:.0f} I/Os;")
    print(f"each full-join query it serves saves {saved:.0f} I/Os - the view "
          f"pays for that insert after {maintain / saved:.2f} queries.")


if __name__ == "__main__":
    main()
