"""The paper's motivating scenario: an operational data warehouse.

A TPC-R-style warehouse serves analytics through two materialized join
views (JV1 = customer ⋈ orders, JV2 = customer ⋈ orders ⋈ lineitem) while
absorbing a real-time stream of small update transactions.  This example
plays the same stream against a naive-maintained and an AR-maintained
deployment and reports the aggregate maintenance workload and the busiest
node's share — the throughput collapse of the paper's introduction, and
the fix.

Run:  python examples/operational_warehouse.py
"""

from collections import Counter

from repro import Cluster, recompute_view
from repro.costs import Tag
from repro.workloads import (
    TpcrGenerator,
    jv1_definition,
    jv2_definition,
    load_into,
)

NUM_NODES = 8
SCALE = 0.004          # 600 customers / 6,000 orders / 24,000 lineitems
TRANSACTIONS = 40      # small real-time transactions
TUPLES_PER_TXN = 4


def run_deployment(method: str) -> dict:
    cluster = Cluster(NUM_NODES)
    generator = TpcrGenerator(scale=SCALE)
    dataset = generator.generate()
    load_into(cluster, dataset)
    cluster.create_join_view(jv1_definition(), method=method)
    cluster.create_join_view(jv2_definition(), method=method)

    next_custkey = len(dataset.customers)
    total_tw = 0.0
    busiest = 0.0
    for _ in range(TRANSACTIONS):
        delta = generator.new_customers(TUPLES_PER_TXN, starting_at=next_custkey)
        next_custkey += TUPLES_PER_TXN
        with cluster.transaction() as txn:
            txn.insert("customer", delta)
        total_tw += txn.report.maintenance_workload
        busiest = max(busiest, txn.report.maintenance_response_time)

    for view in ("JV1", "JV2"):
        assert Counter(cluster.view_rows(view)) == recompute_view(cluster, view)
    return {
        "method": method,
        "total_tw": total_tw,
        "worst_txn_response": busiest,
        "jv1_rows": len(cluster.view_rows("JV1")),
        "jv2_rows": len(cluster.view_rows("JV2")),
    }


def main() -> None:
    print(f"operational warehouse: {TRANSACTIONS} transactions x "
          f"{TUPLES_PER_TXN} customer inserts, L = {NUM_NODES} nodes\n")
    results = [run_deployment(method) for method in ("naive", "auxiliary")]
    for r in results:
        print(f"  {r['method']:10s} total maintenance TW = {r['total_tw']:8.0f} I/Os"
              f"   worst txn response = {r['worst_txn_response']:6.1f} I/Os")
    naive, ar = results
    print(f"\nviews stay identical under both methods "
          f"(JV1: {ar['jv1_rows']} rows, JV2: {ar['jv2_rows']} rows).")
    print(f"the auxiliary-relation deployment does "
          f"{naive['total_tw'] / ar['total_tw']:.1f}x less maintenance work —")
    print("the all-node probes of the naive method are what 'bring a "
          "well-performing system to a crawl' (paper, introduction).")


if __name__ == "__main__":
    main()
