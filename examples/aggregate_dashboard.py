"""A live warehouse dashboard on aggregate join views.

Plain join views materialize every joined tuple; dashboards want grouped
aggregates (order counts and revenue per customer segment).  This example
maintains ``SELECT nationkey, COUNT(*), SUM(totalprice), AVG(totalprice)
FROM customer ⋈ orders GROUP BY nationkey`` incrementally through a stream
of inserts and deletes, and shows why the aggregate form is so much
cheaper on the view side: a 64-tuple transaction touches a handful of
group rows instead of 64 join tuples.

Run:  python examples/aggregate_dashboard.py
"""

from repro import Cluster, Tag, two_way_view
from repro.core import (
    Aggregate,
    AggregateFunction,
    AggregateSpec,
    aggregate_rows,
    recompute_aggregate,
)
from repro.core.aggregates import define_aggregate_join_view
from repro.costs import ascii_table
from repro.workloads import TpcrGenerator, load_into

NUM_NODES = 8
SCALE = 0.004
SEGMENTS_SHOWN = 6


def main() -> None:
    cluster = Cluster(NUM_NODES)
    generator = TpcrGenerator(scale=SCALE)
    dataset = generator.generate()
    load_into(cluster, dataset)

    spec = AggregateSpec(
        group_by=(("customer", "nationkey"),),
        aggregates=(
            Aggregate(AggregateFunction.COUNT, "orders"),
            Aggregate(AggregateFunction.SUM, "revenue", source=("orders", "totalprice")),
            Aggregate(AggregateFunction.AVG, "avg_order", source=("orders", "totalprice")),
        ),
    )
    define_aggregate_join_view(
        cluster,
        two_way_view("dashboard", "customer", "custkey", "orders", "custkey"),
        spec,
        method="auxiliary",
    )

    def show(title: str) -> None:
        rows = sorted(aggregate_rows(cluster, "dashboard"))[:SEGMENTS_SHOWN]
        print(title)
        print(ascii_table(
            ["nation", "orders", "revenue", "avg order"],
            [[n, c, f"{r:,.0f}", f"{a:,.0f}"] for n, c, r, a in rows],
        ))
        print()

    show(f"dashboard after initial load ({len(dataset.customers)} customers):")

    # A burst of new customers lands; the dashboard stays current.
    delta = generator.new_customers(64, starting_at=len(dataset.customers))
    snapshot = cluster.insert("customer", delta)
    show("after a 64-customer real-time transaction:")
    print(f"that transaction's view-side work: "
          f"{snapshot.total_workload([Tag.VIEW]):.0f} I/Os across "
          f"{NUM_NODES} nodes - group rows, not join tuples.")
    churn = cluster.delete("customer", delta[:32])
    show("\nafter 32 of them churned right back out:")

    # The maintained aggregates equal a from-scratch recomputation (up to
    # float round-off from the incremental add/subtract cycles).
    maintained = sorted(aggregate_rows(cluster, "dashboard"))
    recomputed = sorted(recompute_aggregate(cluster, "dashboard"))
    assert len(maintained) == len(recomputed)
    for got, want in zip(maintained, recomputed):
        for a, b in zip(got, want):
            if isinstance(a, float):
                assert abs(a - b) <= 1e-6 * max(1.0, abs(b))
            else:
                assert a == b
    print("verified: maintained aggregates == recomputed from base relations.")


if __name__ == "__main__":
    main()
