"""Maintenance-plan optimization for multi-relation views (paper §2.2).

The paper's cyclic example: a view over A ⋈ B ⋈ C ⋈ A where every relation
is partitioned off its join attributes.  When a tuple arrives in A there
are exactly four ways to propagate it through the auxiliary relations, and
"it is impossible to state which alternative is best without considering
relational statistics".  This example prints all four priced plans, shows
the optimizer's choice tracking a skew we inject, and verifies maintenance
stays correct either way.

Run:  python examples/multiway_optimization.py
"""

from collections import Counter

from repro import Cluster, Schema, recompute_view
from repro.cluster.partitioning import RoundRobinPartitioning
from repro.core import JoinCondition, JoinViewDefinition

A = Schema.of("A", "x", "y", "pa")
B = Schema.of("B", "y2", "z", "pb")
C = Schema.of("C", "z2", "x2", "pc")

TRIANGLE = JoinViewDefinition(
    name="TRI",
    relations=("A", "B", "C"),
    conditions=(
        JoinCondition("A", "y", "B", "y2"),
        JoinCondition("B", "z", "C", "z2"),
        JoinCondition("C", "x2", "A", "x"),
    ),
    select=(("A", "x"), ("B", "z"), ("C", "x2")),
    partitioning=RoundRobinPartitioning(),
)


def build(skew_towards: str) -> Cluster:
    """B and C get asymmetric fan-outs so the optimizer has a real choice."""
    cluster = Cluster(4)
    cluster.create_relation(A, partitioned_on="pa")
    cluster.create_relation(B, partitioned_on="pb")
    cluster.create_relation(C, partitioned_on="pc")
    if skew_towards == "B":
        # B has 16 matches per y2 value, C has 1 per x2 value.
        cluster.insert("B", [(1, i % 4, i) for i in range(16)])
        cluster.insert("C", [(i % 4, i, i) for i in range(16)])
    else:
        cluster.insert("B", [(i, i % 4, i) for i in range(16)])
        cluster.insert("C", [(i % 4, 1, i) for i in range(16)])
    cluster.create_join_view(TRIANGLE, method="auxiliary")
    return cluster


def show_plans(cluster: Cluster, label: str) -> None:
    view = cluster.catalog.view("TRI")
    alternatives = view.maintainer.planner.alternatives("A")
    print(f"plans for a delta on A ({label}):")
    for rank, (plan, cost) in enumerate(alternatives, start=1):
        hops = ", ".join(
            f"{hop.left_relation}.{hop.left_column}->{hop.partner}.{hop.right_column}"
            for hop in plan.hops
        )
        print(f"  {rank}. {hops:40s} estimated cost {cost:8.2f} I/Os")
    best, _ = alternatives[0]
    print(f"  optimizer picks: probe {best.hops[0].partner} first\n")


def main() -> None:
    print("the paper's triangle view A |x| B |x| C |x| A under the AR method")
    print("four legal propagation plans exist for each updated relation\n")
    for skew in ("B", "C"):
        cluster = build(skew_towards=skew)
        show_plans(cluster, f"fan-out skewed towards {skew}")
        best_first = cluster.catalog.view("TRI").maintainer.planner.plan_for("A")
        expected_first = "C" if skew == "B" else "B"
        assert best_first.hops[0].partner == expected_first, (
            "optimizer should start at the low-fanout side"
        )
        cluster.insert("A", [(5, 2, 0), (6, 3, 1)])
        assert Counter(cluster.view_rows("TRI")) == recompute_view(cluster, "TRI")
    print("maintenance verified correct under both skews - the plans differ,")
    print("the view contents do not.")


if __name__ == "__main__":
    main()
