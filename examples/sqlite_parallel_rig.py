"""The §3.3 validation rig on SQLite partitions (the Figure 14 experiment).

One SQLite database per data-server node stands in for the paper's
Teradata installation.  The rig builds the TPC-R tables, the repartitioned
auxiliary copies orders_1 / lineitem_1, and a rowid-mapping global index
(the method Teradata could not run), then times the join step of view
maintenance for a 128-tuple customer insert at 2, 4, and 8 nodes.

Run:  python examples/sqlite_parallel_rig.py
"""

import statistics

from repro.backends import TeradataStyleExperiment
from repro.costs import ascii_table

DELTA = 128
SCALE = 0.02  # 3,000 customers / 30,000 orders / 120,000 lineitems
REPEATS = 5


def measure(num_nodes: int) -> list:
    with TeradataStyleExperiment(
        num_nodes=num_nodes, scale=SCALE, with_global_indexes=True
    ) as experiment:
        delta = experiment.new_delta(DELTA)
        checks = {
            "naive_jv1": (experiment.naive_jv1, DELTA),
            "ar_jv1": (experiment.ar_jv1, DELTA),
            "gi_jv1": (experiment.gi_jv1, DELTA),
            "naive_jv2": (experiment.naive_jv2, DELTA * 4),
            "ar_jv2": (experiment.ar_jv2, DELTA * 4),
        }
        median_ms = {}
        for name, (step, expected_rows) in checks.items():
            timings = [step(delta) for _ in range(REPEATS)]
            assert all(t.result_rows == expected_rows for t in timings)
            median_ms[name] = statistics.median(
                t.response_seconds for t in timings
            ) * 1e3
        return [
            num_nodes,
            median_ms["ar_jv1"], median_ms["naive_jv1"], median_ms["gi_jv1"],
            median_ms["ar_jv2"], median_ms["naive_jv2"],
        ]


def main() -> None:
    print(f"join-step response time, {DELTA}-tuple customer insert, "
          f"scale {SCALE} (milliseconds)\n")
    rows = [measure(num_nodes) for num_nodes in (2, 4, 8)]
    print(ascii_table(
        ["nodes", "AR JV1", "naive JV1", "GI JV1", "AR JV2", "naive JV2"],
        rows,
    ))
    print("\nthe naive method ships the whole delta to every node; the AR")
    print("method ships each tuple to exactly one node, so its response time")
    print("falls as nodes are added - the shape of the paper's Figure 14.")
    print("the GI line is the extension the paper's Teradata could not run.")


if __name__ == "__main__":
    main()
