"""Shim for environments without the `wheel` package (offline legacy
editable installs); all real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
